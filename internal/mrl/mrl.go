// Package mrl implements MRL99, the randomized quantile algorithm of
// Manku, Rajagopalan and Lindsay (SIGMOD 1999): the NEW/COLLAPSE buffer
// framework of their 1998 deterministic algorithm driven by non-uniform
// random sampling, giving O((1/ε)·log²(1/ε)) space without prior
// knowledge of the stream length.
//
// The summary keeps b buffers of capacity k. NEW fills an empty buffer
// with k elements sampled one-per-2^l from the stream, where the sampling
// level l rises as the stream grows (the same schedule as the paper's
// simplified Random algorithm, which MRL99 inspired). When no buffer is
// empty, COLLAPSE merges all buffers at the lowest occupied level into a
// single buffer: conceptually each element is replicated by its buffer's
// weight, and the output keeps the k elements at positions
// offset + i·(W/k) of the weighted merged sequence, with a uniformly
// random offset — the randomized selection that makes the estimate
// unbiased.
//
// Parameters are set from ε in the closed form b = ⌈log₂(1/ε)⌉ + 1 and
// k = ⌈(1/ε)·log₂²(1/ε)/b⌉, which tracks the b·k = Θ((1/ε)·log²(1/ε))
// optimum of the MRL99 constraint optimization; the journal paper notes
// (§1.2.1) that the fine-tuned parameter choices of the original offer
// only a minor advantage over this shape.
package mrl

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// buffer is one weighted sample buffer.
type buffer struct {
	level  int   // sampling/collapse depth, determines default weight 2^level
	weight int64 // per-element weight
	data   []uint64
	full   bool
}

// MRL99 is the randomized Manku–Rajagopalan–Lindsay summary.
type MRL99 struct {
	eps float64
	b   int
	k   int
	n   int64

	// arena is the single b×k element slab all buffers carve their data
	// from: buffer i owns the capped window arena[i·k : (i+1)·k], so the
	// whole summary's payload is one allocation and collapses move
	// elements within it. (Merge may temporarily graft heap-backed
	// buffers; the capped views make any overflow append safely detach
	// rather than overwrite a neighbour.)
	arena []uint64
	bufs  []*buffer
	cur   *buffer

	blockSize int64
	blockPos  int64
	pickAt    int64
	candidate uint64

	collapseSc collapseScratch

	rng *xhash.SplitMix64
}

// sizeParams computes the buffer count b and buffer size k for eps in
// floating point, so callers — the codec in particular — can veto an
// implausible footprint before any allocation happens. (Converting an
// out-of-range float to int is undefined in Go, so the check must run
// on the float values.)
func sizeParams(eps float64) (bf, kf float64) {
	lg := math.Log2(1 / eps)
	if lg < 1 {
		lg = 1
	}
	bf = math.Ceil(lg) + 1
	if bf < 3 {
		bf = 3
	}
	kf = math.Ceil(lg * lg / (eps * bf))
	if kf < 4 {
		kf = 4
	}
	return bf, kf
}

// New returns an empty MRL99 summary with error parameter eps, seeded
// deterministically from seed.
func New(eps float64, seed uint64) *MRL99 {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("mrl: error parameter %v outside (0, 1)", eps))
	}
	bf, kf := sizeParams(eps)
	b, k := int(bf), int(kf)
	m := &MRL99{
		eps:   eps,
		b:     b,
		k:     k,
		arena: make([]uint64, b*k),
		bufs:  make([]*buffer, 0, b),
		rng:   xhash.NewSplitMix64(seed),
	}
	for i := 0; i < b; i++ {
		m.bufs = append(m.bufs, &buffer{data: m.arena[i*k : i*k : (i+1)*k]})
	}
	return m
}

// Eps returns the error parameter.
func (m *MRL99) Eps() float64 { return m.eps }

// BufferCount returns b.
func (m *MRL99) BufferCount() int { return m.b }

// BufferSize returns k.
func (m *MRL99) BufferSize() int { return m.k }

// Count implements core.Summary.
func (m *MRL99) Count() int64 { return m.n }

// activeLevel mirrors the sampling schedule of the Random algorithm: keep
// the first ~k·2^(b−2) elements exactly, then sample geometrically.
func (m *MRL99) activeLevel() int {
	den := float64(m.k) * math.Pow(2, float64(m.b-2))
	l := int(math.Ceil(math.Log2(float64(m.n+1) / den)))
	if l < 0 {
		l = 0
	}
	return l
}

// Update implements core.CashRegister.
func (m *MRL99) Update(x uint64) {
	m.n++
	if m.cur == nil {
		m.startBuffer()
	}
	if m.blockPos == m.pickAt {
		m.candidate = x
	}
	m.blockPos++
	if m.blockPos == m.blockSize {
		m.cur.data = append(m.cur.data, m.candidate)
		m.blockPos = 0
		m.pickAt = int64(m.rng.Uint64n(uint64(m.blockSize)))
		if len(m.cur.data) == m.k {
			slices.Sort(m.cur.data)
			m.cur.full = true
			m.cur = nil
		}
	}
}

func (m *MRL99) startBuffer() {
	b := m.emptyBuffer()
	if b == nil {
		m.collapse()
		b = m.emptyBuffer()
	}
	lv := m.activeLevel()
	b.level = lv
	b.weight = int64(1) << lv
	m.cur = b
	m.blockSize = int64(1) << lv
	m.blockPos = 0
	m.pickAt = int64(m.rng.Uint64n(uint64(m.blockSize)))
}

func (m *MRL99) emptyBuffer() *buffer {
	for _, b := range m.bufs {
		if !b.full && b != m.cur {
			return b
		}
	}
	return nil
}

// collapse merges the buffers at the lowest occupied level (at least
// two; if the lowest level holds a single buffer the next level joins the
// group) into one buffer at one level above the group's maximum.
func (m *MRL99) collapse() {
	group := m.lowestGroup()
	if len(group) < 2 {
		//lint:ignore SQ003 corruption guard: collapse only runs once every buffer is full, so this is unreachable
		panic("mrl: collapse with fewer than two buffers")
	}
	out := collapseGroup(group, m.k, m.rng, &m.collapseSc)

	// Store the result in the first group buffer; empty the rest.
	first := group[0]
	first.data = append(first.data[:0], out.data...)
	first.level = out.level
	first.weight = out.weight
	first.full = true
	for _, g := range group[1:] {
		g.data = g.data[:0]
		g.full = false
		g.level = 0
		g.weight = 0
	}
}

// lowestGroup returns all full buffers at the lowest occupied level,
// extended to the next level when the lowest holds only one buffer.
func (m *MRL99) lowestGroup() []*buffer {
	full := make([]*buffer, 0, len(m.bufs))
	for _, b := range m.bufs {
		if b.full {
			full = append(full, b)
		}
	}
	slices.SortStableFunc(full, func(a, b *buffer) int { return a.level - b.level })
	if len(full) < 2 {
		return full
	}
	end := 1
	for end < len(full) && full[end].level == full[0].level {
		end++
	}
	if end == 1 {
		// Single buffer at the lowest level: include the next level too.
		lvl := full[1].level
		end = 2
		for end < len(full) && full[end].level == lvl {
			end++
		}
	}
	return full[:end]
}

// collapsed is the output of a COLLAPSE operation.
type collapsed struct {
	level  int
	weight int64
	data   []uint64
}

// collapseScratch holds the k-way merge cursors and output staging of a
// COLLAPSE. It is owned by the summary (collapses only run inside
// single-writer ingestion), so steady-state collapses allocate nothing.
type collapseScratch struct {
	idx []int
	out []uint64
}

// collapseGroup performs the weighted MRL COLLAPSE with a random offset:
// the merged, weight-replicated sequence of all group elements is sampled
// at positions offset + i·(W/k) without materializing the replication.
// The returned data aliases sc.out and must be copied out before the
// next collapse.
func collapseGroup(group []*buffer, k int, rng *xhash.SplitMix64, sc *collapseScratch) collapsed {
	var total int64
	maxLevel := 0
	for _, g := range group {
		total += g.weight * int64(len(g.data))
		if g.level > maxLevel {
			maxLevel = g.level
		}
	}
	// The pure ingest schedule only collapses groups of exactly-k
	// buffers, where total = k·ΣW and the arithmetic below is exact.
	// Merge grafts SHORT buffers (partials closed early), making total
	// indivisible, and two naive roundings then corrupt the estimate:
	// a floored stride makes the walk want more than k samples, and the
	// sample cap silently drops the TOP of the weighted sequence (a
	// systematic upper-quantile underestimate of several ε·n); deriving
	// the weight as total/len(out) after the fact loses up to a seventh
	// of the mass to truncation. So the stride is ceiled — the sequence
	// is spanned end to end in ≤ k samples — and each sample represents
	// exactly stride positions, with the sample count floored so the
	// retained mass count·stride never exceeds total (the Invariants
	// contract caps retained weight at the stream length). The only
	// loss is the final total mod stride positions, less than one
	// sample's share.
	stride := (total + int64(k) - 1) / int64(k)
	if stride < 1 {
		stride = 1
	}
	count := total / stride
	if count < 1 {
		count = 1
	}
	offset := int64(rng.Uint64n(uint64(stride)))

	// k-way merge over the sorted group buffers, accumulating weight.
	if cap(sc.idx) < len(group) {
		sc.idx = make([]int, len(group))
	}
	if cap(sc.out) < k {
		sc.out = make([]uint64, 0, k)
	}
	idx := sc.idx[:len(group)]
	for i := range idx {
		idx[i] = 0
	}
	out := sc.out[:0]
	var cum int64
	next := offset
	for {
		// Find the group buffer with the smallest current element.
		best := -1
		for gi, g := range group {
			if idx[gi] >= len(g.data) {
				continue
			}
			if best < 0 || g.data[idx[gi]] < group[best].data[idx[best]] {
				best = gi
			}
		}
		if best < 0 {
			break
		}
		g := group[best]
		v := g.data[idx[best]]
		idx[best]++
		lo, hi := cum, cum+g.weight // v occupies weighted positions [lo, hi)
		cum = hi
		for next >= lo && next < hi && int64(len(out)) < count {
			out = append(out, v)
			next += stride
		}
	}
	sc.out = out
	return collapsed{level: maxLevel + 1, weight: stride, data: out}
}

// samplePool recycles the weighted-sample scratch built on every query.
// Queries may run concurrently (read-locked shards), so the scratch
// cannot live on the summary.
var samplePool = sync.Pool{New: func() any { return new([]core.WeightedValue) }}

// appendSamples collects retained elements with their weights into dst,
// sorted by value.
func (m *MRL99) appendSamples(dst []core.WeightedValue) []core.WeightedValue {
	for _, b := range m.bufs {
		if len(b.data) == 0 {
			continue
		}
		w := b.weight
		if w == 0 {
			w = int64(1) << b.level
		}
		for _, v := range b.data {
			dst = append(dst, core.WeightedValue{V: v, W: w})
		}
	}
	core.SortWeighted(dst)
	return dst
}

// Rank implements core.Summary.
func (m *MRL99) Rank(x uint64) int64 {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := m.appendSamples((*sp)[:0])
	r := core.WeightedRank(sm, x)
	*sp = sm
	samplePool.Put(sp)
	return r
}

// Quantile implements core.Summary.
func (m *MRL99) Quantile(phi float64) uint64 {
	if m.n == 0 {
		panic(core.ErrEmpty)
	}
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := m.appendSamples((*sp)[:0])
	q := core.WeightedQuantile(sm, phi)
	*sp = sm
	samplePool.Put(sp)
	return q
}

// QuantileBatch implements core.QuantileBatcher: the retained samples are
// collected and sorted once for the whole batch.
func (m *MRL99) QuantileBatch(phis []float64) []uint64 {
	if m.n == 0 {
		panic(core.ErrEmpty)
	}
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := m.appendSamples((*sp)[:0])
	out := core.WeightedQuantiles(sm, phis)
	*sp = sm
	samplePool.Put(sp)
	return out
}

// RankBatch implements core.QuantileBatcher.
func (m *MRL99) RankBatch(xs []uint64) []int64 {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := m.appendSamples((*sp)[:0])
	out := core.WeightedRanks(sm, xs)
	*sp = sm
	samplePool.Put(sp)
	return out
}

// AppendQuerySnapshot implements core.Snapshotter.
func (m *MRL99) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := m.appendSamples((*sp)[:0])
	core.AppendWeightedSnapshot(qs, sm)
	*sp = sm
	samplePool.Put(sp)
}

// SpaceBytes implements core.Summary: the b×k element arena plus
// per-buffer metadata, collapse scratch and scalar state.
func (m *MRL99) SpaceBytes() int64 {
	words := int64(cap(m.arena)) + int64(cap(m.collapseSc.out)) + int64(cap(m.collapseSc.idx))
	for _, b := range m.bufs {
		words += 3
		// Merge can graft heap-backed buffers outside the arena; charge
		// any such detached storage honestly.
		if c := cap(b.data); c > m.k {
			words += int64(c)
		}
	}
	words += 10
	return words * core.WordBytes
}
