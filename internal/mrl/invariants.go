package mrl

import (
	"fmt"
	"slices"
)

// Invariants implements invariant.Checkable: the buffer-framework
// accounting the MRL99 analysis rests on.
//
//   - The summary keeps exactly b buffers, each within its capacity k.
//   - Full buffers are sorted with a positive per-element weight.
//   - The per-block sampling state of the buffer being filled is
//     coherent: the pick position lies inside the current block.
//   - Weight accounting: the total weight of retained samples never
//     exceeds n. (COLLAPSE floors the merged weight, so equality holds
//     only between collapses; the in-progress block's elements are not
//     yet represented at all.)
func (m *MRL99) Invariants() error {
	if m.n < 0 {
		return fmt.Errorf("mrl: negative count %d", m.n)
	}
	if len(m.bufs) != m.b {
		return fmt.Errorf("mrl: %d buffers, want b = %d", len(m.bufs), m.b)
	}
	var total int64
	for i, b := range m.bufs {
		if len(b.data) > m.k {
			return fmt.Errorf("mrl: buffer %d holds %d > k = %d elements", i, len(b.data), m.k)
		}
		if b.level < 0 || b.level > 62 {
			return fmt.Errorf("mrl: buffer %d at impossible level %d", i, b.level)
		}
		if b.full {
			if b.weight < 1 {
				return fmt.Errorf("mrl: full buffer %d has weight %d < 1", i, b.weight)
			}
			if !slices.IsSorted(b.data) {
				return fmt.Errorf("mrl: full buffer %d is not sorted", i)
			}
			total += b.weight * int64(len(b.data))
		} else {
			w := b.weight
			if w == 0 {
				w = int64(1) << b.level
			}
			total += w * int64(len(b.data))
		}
	}
	if total > m.n {
		return fmt.Errorf("mrl: retained weight %d exceeds stream length %d", total, m.n)
	}
	if m.cur != nil {
		if m.cur.full {
			return fmt.Errorf("mrl: buffer being filled is marked full")
		}
		if m.blockSize != int64(1)<<m.cur.level {
			return fmt.Errorf("mrl: block size %d does not match level %d", m.blockSize, m.cur.level)
		}
		if m.blockPos < 0 || m.blockPos >= m.blockSize {
			return fmt.Errorf("mrl: block position %d outside [0, %d)", m.blockPos, m.blockSize)
		}
		if m.pickAt < 0 || m.pickAt >= m.blockSize {
			return fmt.Errorf("mrl: sample position %d outside [0, %d)", m.pickAt, m.blockSize)
		}
	}
	return nil
}
