package mrl

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestCodecRoundTripContinuesIdentically(t *testing.T) {
	head := streamgen.Generate(streamgen.MPCATLike{Seed: 80}, 30000)
	tail := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 81}, 30000)

	straight := New(0.01, 42)
	feed(straight, head)
	feed(straight, tail)

	stopped := New(0.01, 42)
	feed(stopped, head)
	blob, err := stopped.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	feed(restored, tail)

	if restored.Count() != straight.Count() {
		t.Fatalf("count %d vs %d", restored.Count(), straight.Count())
	}
	for _, phi := range core.EvenPhis(0.05) {
		if restored.Quantile(phi) != straight.Quantile(phi) {
			t.Fatalf("quantile(%v) diverged after restore", phi)
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	m := New(0.05, 1)
	feed(m, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 82}, 5000))
	blob, _ := m.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 7 {
		var b MRL99
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
}

func TestCodecBufferCountMustMatch(t *testing.T) {
	// An encoding of a different-ε summary has a different buffer count;
	// decoding into parameters derived from the encoded ε must succeed,
	// so cross-ε restore works — but a tampered count must fail.
	m := New(0.02, 5)
	feed(m, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 83}, 5000))
	blob, _ := m.MarshalBinary()
	restored := New(0.5, 0) // parameters come from the blob, not this
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatalf("cross-parameter restore failed: %v", err)
	}
	if restored.Eps() != 0.02 {
		t.Errorf("restored eps = %v", restored.Eps())
	}
}
