package gk

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
	"streamquantiles/internal/xhash"
)

// The GK variants keep the stream minimum and maximum exactly (GK01's
// boundary rule); without it, φ→0/φ→1 queries err by up to 2ε.

func firstLast(seq tupleSeq) (first, last tuple) {
	started := false
	seq(func(t tuple) bool {
		if !started {
			first = t
			started = true
		}
		last = t
		return true
	})
	return first, last
}

func TestExtremesRetainedExactly(t *testing.T) {
	rng := xhash.NewSplitMix64(7)
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 8}, 30000)
	min, max := data[0], data[0]
	for _, x := range data {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	for name, s := range variants(0.05) {
		feed(s, data)
		first, last := firstLast(seqOf(s))
		if first.v != min {
			t.Errorf("%s: first tuple %d, want stream minimum %d", name, first.v, min)
		}
		if first.del != 0 {
			t.Errorf("%s: minimum tuple has Δ=%d, want 0", name, first.del)
		}
		if last.v != max {
			t.Errorf("%s: last tuple %d, want stream maximum %d", name, last.v, max)
		}
		// φ→0 queries stay within εn of the minimum (the guarantee; the
		// exact min itself is not promised by the extraction rule).
		q := s.Quantile(1e-9)
		var rank int
		for _, x := range data {
			if x < q {
				rank++
			}
		}
		if float64(rank) > 0.05*float64(len(data)) {
			t.Errorf("%s: Quantile(→0) = %d has rank %d > εn", name, q, rank)
		}
	}
	_ = rng
}

func TestExtremeQuantilesWithinEps(t *testing.T) {
	// Regression for the boundary bug the brute-force net caught: at
	// φ = 1/n the reported element's rank must stay within εn.
	const eps = 0.1
	rng := xhash.NewSplitMix64(99)
	for trial := 0; trial < 50; trial++ {
		n := 10 + int(rng.Uint64n(40))
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Uint64n(64)
		}
		for name, s := range variants(eps) {
			feed(s, data)
			got := s.Quantile(0.01)
			var rank int
			for _, x := range data {
				if x < got {
					rank++
				}
			}
			if float64(rank) > eps*float64(n)+1 {
				t.Errorf("trial %d %s: Quantile(0.01) has rank %d > εn+1 (n=%d)",
					trial, name, rank, n)
			}
		}
	}
}

func TestBiasedKeepsMinimum(t *testing.T) {
	b := NewBiased(0.3)
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 9}, 20000)
	min := data[0]
	for _, x := range data {
		if x < min {
			min = x
		}
	}
	feed(b, data)
	b.Flush()
	if b.tuples.vals[0] != min {
		t.Errorf("biased first tuple %d, want minimum %d", b.tuples.vals[0], min)
	}
	// The biased guarantee at φ→0 is relative: rank ≤ ε·φn → essentially
	// exact at the extreme.
	q := b.Quantile(1e-6)
	var rank int
	for _, x := range data {
		if x < q {
			rank++
		}
	}
	if rank > 1 {
		t.Errorf("biased Quantile(→0) = %d has rank %d, want ≈ 0", q, rank)
	}
}

func TestExtremesSurviveHeavyCompression(t *testing.T) {
	// Very coarse ε forces aggressive merging; the extremes must survive.
	for name, s := range variants(0.45) {
		for i := 0; i < 10000; i++ {
			s.Update(uint64(10000 - i)) // descending: repeated new minima
		}
		first, last := firstLast(seqOf(s))
		if first.v != 1 || last.v != 10000 {
			t.Errorf("%s: extremes [%d, %d], want [1, 10000]", name, first.v, last.v)
		}
	}
	_ = core.WordBytes
}
