package gk

import (
	"sort"

	"streamquantiles/internal/core"
)

// Biased is the biased-quantiles extension of the GK summary (Cormode,
// Korn, Muthukrishnan, Srivastava: "Space- and time-efficient
// deterministic algorithms for biased quantiles over data streams",
// PODS 2006 — one of the problem variations the paper's introduction
// surveys). Where the uniform summaries guarantee absolute rank error
// εn, Biased guarantees *relative* rank error ε·r(v): the low quantiles
// (φ → 0) are tracked with proportionally finer resolution, which is
// what tail-latency monitoring of minima or error budgets needs. For
// high-biased data, feed the mirrored stream (^x) and mirror fractions.
//
// The structure is the GK tuple list with the rank-dependent invariant
//
//	g_i + Δ_i ≤ max(1, ⌊2ε·r_i⌋),  r_i = Σ_{j≤i} g_j,
//
// maintained by an amortized right-to-left COMPRESS sweep.
type Biased struct {
	eps      float64
	n        int64
	tuples   tcols
	spare    tcols   // merge destination, swapped with tuples each flush
	ranks    []int64 // compress-sweep prefix-rank scratch
	buf      []uint64
	maxWords int
}

// NewBiased returns an empty biased-quantile summary with relative error
// parameter eps in (0, 1).
func NewBiased(eps float64) *Biased {
	checkEps(eps)
	return &Biased{
		eps: eps,
		buf: make([]uint64, 0, minBuffer),
	}
}

// Eps returns the relative error parameter.
func (b *Biased) Eps() float64 { return b.eps }

// Count implements core.Summary.
func (b *Biased) Count() int64 { return b.n }

// TupleCount reports |L| after flushing pending elements.
func (b *Biased) TupleCount() int {
	b.Flush()
	return b.tuples.len()
}

// invariant is the rank-dependent capacity f(r) = max(1, ⌊2ε·r⌋).
func (b *Biased) invariant(r int64) int64 {
	f := int64(2 * b.eps * float64(r))
	if f < 1 {
		return 1
	}
	return f
}

// Update implements core.CashRegister. Arriving elements are buffered
// and merged in batch, the GKArray treatment applied to the biased
// invariant.
func (b *Biased) Update(x uint64) {
	b.n++
	b.buf = append(b.buf, x)
	if len(b.buf) == cap(b.buf) {
		b.flush()
	}
}

// Flush merges buffered elements into the tuple list.
func (b *Biased) Flush() {
	if len(b.buf) > 0 {
		b.flush()
	}
}

func (b *Biased) flush() {
	sort.Slice(b.buf, func(i, j int) bool { return b.buf[i] < b.buf[j] })

	// Merge buffer and tuple columns in sorted order into the spare
	// column set, then swap. New elements take Δ = g_succ + Δ_succ − 1
	// from their successor tuple (0 past the end), as in GKAdaptive; the
	// biased invariant is enforced by the compress sweep below.
	b.spare.ensure(b.tuples.len() + len(b.buf))
	out := &b.spare
	ti, bi := 0, 0
	for ti < b.tuples.len() || bi < len(b.buf) {
		if bi < len(b.buf) && (ti == b.tuples.len() || b.buf[bi] < b.tuples.vals[ti]) {
			var del int64
			if ti < b.tuples.len() {
				del = b.tuples.gaps[ti] + b.tuples.dels[ti] - 1
			}
			out.push(b.buf[bi], 1, del)
			bi++
		} else {
			out.push(b.tuples.vals[ti], b.tuples.gaps[ti], b.tuples.dels[ti])
			ti++
		}
	}
	b.tuples, b.spare = b.spare, b.tuples
	b.buf = b.buf[:0]
	b.compress()

	want := b.tuples.len() / 2
	if want < minBuffer {
		want = minBuffer
	}
	if cap(b.buf) != want {
		b.buf = make([]uint64, 0, want)
	}
	if w := b.tuples.len()*tupleWords + cap(b.buf); w > b.maxWords {
		b.maxWords = w
	}
}

// compress merges tuple i into i+1 when the result respects the biased
// invariant at i+1's rank; sweeping right-to-left keeps ranks valid as
// tuples disappear (r_{i+1} only shrinks by already-processed merges to
// its right, never by merges to its left).
func (b *Biased) compress() {
	k := b.tuples.len()
	if k < 3 {
		return
	}
	// Prefix ranks, computed over the gap column alone.
	if cap(b.ranks) < k {
		b.ranks = make([]int64, k)
	}
	ranks := b.ranks[:k]
	var rsum int64
	for i, g := range b.tuples.gaps {
		rsum += g
		ranks[i] = rsum
	}
	// Right-to-left merge sweep; next tracks the nearest surviving tuple,
	// so chains of removals fold into one survivor. The last tuple (the
	// maximum) is never removed. Merging into next never changes the
	// prefix rank at next, so the pre-computed ranks stay valid.
	gaps, dels := b.tuples.gaps, b.tuples.dels
	kept := k
	next := k - 1
	// i stops at 1: the first tuple is the exact minimum and permanent.
	for i := next - 1; i >= 1; i-- {
		if gaps[i]+gaps[next]+dels[next] <= b.invariant(ranks[next]) {
			gaps[next] += gaps[i]
			gaps[i] = 0 // mark removed
			kept--
		} else {
			next = i
		}
	}
	if kept != k {
		// Compact all three columns in place over the survivors.
		w := 0
		for i := 0; i < k; i++ {
			if gaps[i] != 0 {
				b.tuples.vals[w] = b.tuples.vals[i]
				gaps[w] = gaps[i]
				dels[w] = dels[i]
				w++
			}
		}
		b.tuples.vals = b.tuples.vals[:w]
		b.tuples.gaps = gaps[:w]
		b.tuples.dels = dels[:w]
	}
}

// Quantile implements core.Summary with the relative-error extraction
// rule: report v_{i−1} for the first i with r_i + Δ_i > r + f(r)/2.
func (b *Biased) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if b.n == 0 {
		panic(core.ErrEmpty)
	}
	b.Flush()
	target := core.TargetRank(phi, b.n) + 1
	bound := target + b.invariant(target)/2
	var (
		rsum int64
		prev uint64
		have bool
	)
	for i, g := range b.tuples.gaps {
		rsum += g
		if rsum+b.tuples.dels[i] > bound {
			if have {
				return prev
			}
			return b.tuples.vals[i]
		}
		prev = b.tuples.vals[i]
		have = true
	}
	return prev
}

// QuantileBatch implements core.QuantileBatcher. The biased bound
// target + f(target)/2 is non-decreasing in the target, so sorting the
// fractions once lets a single sweep over the tuple list flush every
// query at its first qualifying tuple, exactly as the per-φ rule.
func (b *Biased) QuantileBatch(phis []float64) []uint64 {
	if b.n == 0 {
		panic(core.ErrEmpty)
	}
	b.Flush()
	order := make([]int, len(phis))
	for i := range order {
		core.CheckPhi(phis[i])
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return phis[order[x]] < phis[order[y]] })

	out := make([]uint64, len(phis))
	oi := 0
	var (
		rsum int64
		prev uint64
		have bool
	)
	for i, g := range b.tuples.gaps {
		rsum += g
		v, del := b.tuples.vals[i], b.tuples.dels[i]
		for oi < len(order) {
			idx := order[oi]
			target := core.TargetRank(phis[idx], b.n) + 1
			if rsum+del <= target+b.invariant(target)/2 {
				break
			}
			if have {
				out[idx] = prev
			} else {
				out[idx] = v
			}
			oi++
		}
		if oi == len(order) {
			break
		}
		prev = v
		have = true
	}
	for ; oi < len(order); oi++ {
		out[order[oi]] = prev
	}
	return out
}

// RankBatch implements core.QuantileBatcher.
func (b *Biased) RankBatch(xs []uint64) []int64 {
	b.Flush()
	return queryRanks(b.seq, xs)
}

// Rank implements core.Summary.
func (b *Biased) Rank(x uint64) int64 {
	b.Flush()
	return queryRank(b.seq, x)
}

// seq yields the tuples in element order. Callers flush first.
func (b *Biased) seq(yield func(t tuple) bool) {
	b.tuples.seq(yield)
}

// SpaceBytes implements core.Summary. The retained merge double-buffer
// and rank scratch are charged at capacity.
func (b *Biased) SpaceBytes() int64 {
	words := int64(b.tuples.len()+cap(b.spare.vals))*tupleWords +
		int64(cap(b.ranks)) + int64(cap(b.buf)) + 4
	return words * core.WordBytes
}
