package gk

import (
	"streamquantiles/internal/core"
	"streamquantiles/internal/skiplist"
)

// anode is the per-tuple state of the Adaptive variant: the (g, Δ) pair,
// a back-reference to the skiplist node that stores the element, a cached
// removal cost, and the tuple's position in the removable-cost heap.
type anode struct {
	g, del int64
	node   *skiplist.Node[uint64, *anode]
	cost   int64 // g_i + g_{i+1} + Δ_{i+1}, valid while hidx >= 0
	hidx   int   // index in the heap, or -1 when the tuple has no successor
}

// Adaptive is the GKAdaptive variant of the Greenwald–Khanna summary
// (paper §2.1.1): every insertion uses Δ = g_i + Δ_i − 1 from its
// successor, and afterwards at most one removable tuple is deleted — the
// new tuple itself if removable, otherwise the globally cheapest tuple
// found at the top of a min-heap ordered by g_i + g_{i+1} + Δ_{i+1}.
//
// COMPRESS is never called, so the O((1/ε)·log(εn)) space bound of the
// original algorithm is not guaranteed, but empirically this variant is
// the most space-efficient deterministic summary in the study.
type Adaptive struct {
	eps  float64
	n    int64
	list *skiplist.List[uint64, *anode]
	heap []*anode

	// Batch workspace (see batch.go), reused across UpdateBatch calls.
	// The skiplist arena is Reset at each rebuild, once the previous
	// list (whose nodes it backs) is dead.
	batchBuf     []uint64
	tupleScratch tcols
	mergeScratch tcols
	nodePool     []anode
	arena        skiplist.Arena[uint64, *anode]
}

// newAdaptiveIndexArena starts a sorted skiplist build with the
// variant's tower seed, salted so successive batch rebuilds draw fresh
// towers, with nodes drawn from the summary-owned arena.
func newAdaptiveIndexArena(salt uint64, ar *skiplist.Arena[uint64, *anode]) *skiplist.Builder[uint64, *anode] {
	return skiplist.NewBuilderArena[uint64, *anode](0x6b61646170746976^salt, ar)
}

// NewAdaptive returns an empty GKAdaptive summary with error parameter
// eps in (0, 1).
func NewAdaptive(eps float64) *Adaptive {
	checkEps(eps)
	return &Adaptive{
		eps:  eps,
		list: skiplist.New[uint64, *anode](0x6b61646170746976), // deterministic tower seed
	}
}

// Eps returns the summary's error parameter.
func (a *Adaptive) Eps() float64 { return a.eps }

// Count implements core.Summary.
func (a *Adaptive) Count() int64 { return a.n }

// TupleCount reports |L|, the number of stored tuples.
func (a *Adaptive) TupleCount() int { return a.list.Len() }

// Update implements core.CashRegister.
func (a *Adaptive) Update(x uint64) {
	a.n++
	succ := a.list.Successor(x)
	t := &anode{g: 1, hidx: -1}
	if succ != nil {
		t.del = succ.Value.g + succ.Value.del - 1
	}
	t.node = a.list.Insert(x, t)
	prev := a.list.Prev(t.node)
	if prev == nil {
		// New minimum: its rank is known exactly (GK01's boundary rule —
		// keeping the extremes exact is what makes φ→0 and φ→1 queries
		// ε-accurate rather than 2ε).
		t.del = 0
	}

	// Wire the heap: the new tuple gains succ as successor; the previous
	// tuple's successor becomes the new tuple; a tuple that was first and
	// no longer is becomes removal-eligible.
	if succ != nil {
		a.heapPush(t)
	}
	if prev != nil {
		a.heapRefresh(prev.Value)
	} else if succ != nil {
		a.heapRefresh(succ.Value) // old first gained a predecessor
	}

	p := threshold(a.eps, a.n)
	// First try to drop the just-inserted tuple, then the global minimum.
	if t.hidx >= 0 && t.cost <= p {
		a.remove(t)
		return
	}
	if len(a.heap) > 0 && a.heap[0].cost <= p {
		a.remove(a.heap[0])
	}
}

// remove merges tuple t into its successor and repairs the heap for every
// tuple whose cost depends on the change.
func (a *Adaptive) remove(t *anode) {
	succNode := t.node.Next()
	if succNode == nil {
		//lint:ignore SQ003 corruption guard: the heap never holds the last tuple, so this is unreachable
		panic("gk: removing the last tuple")
	}
	succ := succNode.Value
	prev := a.list.Prev(t.node)

	succ.g += t.g
	a.heapDelete(t)
	a.list.Remove(t.node)
	t.node = nil

	// succ's own cost includes its g; prev's successor and its (g, Δ) changed.
	a.heapRefresh(succ)
	if prev != nil {
		a.heapRefresh(prev.Value)
	}
}

// Quantile implements core.Summary.
func (a *Adaptive) Quantile(phi float64) uint64 {
	return queryQuantile(a.seq, a.n, phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (a *Adaptive) QuantileBatch(phis []float64) []uint64 {
	return queryQuantiles(a.seq, a.n, phis)
}

// RankBatch implements core.QuantileBatcher.
func (a *Adaptive) RankBatch(xs []uint64) []int64 {
	return queryRanks(a.seq, xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (a *Adaptive) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	appendQuerySnapshot(a.seq, a.n, qs)
}

// Rank implements core.Summary.
func (a *Adaptive) Rank(x uint64) int64 {
	return queryRank(a.seq, x)
}

// SpaceBytes implements core.Summary: 3 words per tuple, the skiplist
// index pointers, one pointer word per heap slot, plus the scalar state.
func (a *Adaptive) SpaceBytes() int64 {
	words := int64(a.list.Len())*tupleWords +
		a.list.PointerWords() +
		int64(len(a.heap)) +
		int64(a.list.Len()) + // back-pointers node↔tuple
		4 // eps, n
	return words * core.WordBytes
}

// seq yields the tuples in element order.
func (a *Adaptive) seq(yield func(t tuple) bool) {
	for n := a.list.First(); n != nil; n = n.Next() {
		if !yield(tuple{v: n.Key, g: n.Value.g, del: n.Value.del}) {
			return
		}
	}
}

// heap maintenance: a classic array-backed min-heap over cost, with
// per-node index tracking so neighbour updates can re-sift in place.

// computeCost returns the removal cost of t, or false when t must not
// be removed: the last tuple (no successor) and the first tuple (the
// exact minimum) are permanent.
func (a *Adaptive) computeCost(t *anode) (int64, bool) {
	succ := t.node.Next()
	if succ == nil || a.list.Prev(t.node) == nil {
		return 0, false
	}
	return t.g + succ.Value.g + succ.Value.del, true
}

func (a *Adaptive) heapPush(t *anode) {
	cost, ok := a.computeCost(t)
	if !ok {
		return
	}
	t.cost = cost
	t.hidx = len(a.heap)
	a.heap = append(a.heap, t)
	a.siftUp(t.hidx)
}

// heapRefresh recomputes t's cost and restores heap order, handling the
// transitions into and out of "last tuple" (no successor) status.
func (a *Adaptive) heapRefresh(t *anode) {
	cost, ok := a.computeCost(t)
	switch {
	case !ok && t.hidx >= 0:
		a.heapDelete(t)
	case ok && t.hidx < 0:
		t.cost = cost
		t.hidx = len(a.heap)
		a.heap = append(a.heap, t)
		a.siftUp(t.hidx)
	case ok:
		t.cost = cost
		if !a.siftUp(t.hidx) {
			a.siftDown(t.hidx)
		}
	}
}

func (a *Adaptive) heapDelete(t *anode) {
	i := t.hidx
	if i < 0 {
		return
	}
	last := len(a.heap) - 1
	a.swap(i, last)
	a.heap = a.heap[:last]
	t.hidx = -1
	if i < last {
		if !a.siftUp(i) {
			a.siftDown(i)
		}
	}
}

func (a *Adaptive) swap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].hidx = i
	a.heap[j].hidx = j
}

func (a *Adaptive) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if a.heap[parent].cost <= a.heap[i].cost {
			break
		}
		a.swap(parent, i)
		i = parent
		moved = true
	}
	return moved
}

func (a *Adaptive) siftDown(i int) {
	n := len(a.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && a.heap[left].cost < a.heap[smallest].cost {
			smallest = left
		}
		if right < n && a.heap[right].cost < a.heap[smallest].cost {
			smallest = right
		}
		if smallest == i {
			return
		}
		a.swap(i, smallest)
		i = smallest
	}
}

// checkHeap validates heap order and index integrity; test hook.
func (a *Adaptive) checkHeap() bool {
	return a.heapInvariants() == nil
}
