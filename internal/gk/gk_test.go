package gk

import (
	"math"
	"slices"
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// variants under test, constructed per eps.
func variants(eps float64) map[string]core.CashRegister {
	return map[string]core.CashRegister{
		"Adaptive": NewAdaptive(eps),
		"Theory":   NewTheory(eps),
		"Array":    NewArray(eps),
	}
}

func feed(s core.CashRegister, data []uint64) {
	for _, x := range data {
		s.Update(x)
	}
}

// seqOf exposes the internal tuple sequence of a variant for invariant checks.
func seqOf(s core.CashRegister) tupleSeq {
	switch v := s.(type) {
	case *Adaptive:
		return v.seq
	case *Theory:
		return v.seq
	case *Array:
		v.Flush()
		return v.seq
	}
	panic("unknown variant")
}

func TestBandBasics(t *testing.T) {
	const p = 100
	if got := band(p, p); got != 0 {
		t.Errorf("band(p, p) = %d, want 0", got)
	}
	if got := band(0, p); got != 64 {
		t.Errorf("band(0, p) = %d, want 64", got)
	}
	// Bands must be monotone non-increasing in Δ.
	prev := 64
	for del := int64(1); del <= p; del++ {
		b := band(del, p)
		if b > prev {
			t.Fatalf("band not monotone: band(%d)=%d after band(%d)=%d", del, b, del-1, prev)
		}
		prev = b
	}
}

func TestBandCoversAllDeltas(t *testing.T) {
	// Every Δ in [0, p] must land in some band without panicking.
	for _, p := range []int64{1, 2, 3, 10, 127, 1000} {
		for del := int64(0); del <= p; del++ {
			b := band(del, p)
			if b < 0 || b > 64 {
				t.Fatalf("band(%d, %d) = %d out of range", del, p, b)
			}
		}
	}
}

func TestAllVariantsErrorGuarantee(t *testing.T) {
	const n = 20000
	const eps = 0.01
	for _, gen := range []streamgen.Generator{
		streamgen.Uniform{Bits: 24, Seed: 1},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 2}},
		streamgen.Reversed{Inner: streamgen.Uniform{Bits: 24, Seed: 3}},
		streamgen.MPCATLike{Seed: 4},
		streamgen.Normal{Bits: 20, Sigma: 0.1, Seed: 5},
	} {
		data := streamgen.Generate(gen, n)
		oracle := exact.New(data)
		for name, s := range variants(eps) {
			feed(s, data)
			maxErr, _ := oracle.EvaluateSummary(s, eps)
			if maxErr > eps {
				t.Errorf("%s on %s: max error %v exceeds ε=%v", name, gen.Name(), maxErr, eps)
			}
		}
	}
}

func TestInvariantsThroughoutStream(t *testing.T) {
	const eps = 0.05
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 7}, 5000)
	for name, s := range variants(eps) {
		var prefix []uint64
		for i, x := range data {
			s.Update(x)
			prefix = append(prefix, x)
			if (i+1)%500 == 0 {
				sorted := slices.Clone(prefix)
				slices.Sort(sorted)
				p := threshold(eps, int64(i+1))
				if err := checkInvariants(seqOf(s), sorted, p); err != nil {
					t.Fatalf("%s after %d updates: %v", name, i+1, err)
				}
			}
		}
	}
}

func TestDuplicateHeavyStream(t *testing.T) {
	const eps = 0.02
	data := make([]uint64, 10000)
	for i := range data {
		data[i] = uint64(i % 7) // 7 distinct values
	}
	oracle := exact.New(data)
	for name, s := range variants(eps) {
		feed(s, data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%s on duplicates: max error %v > ε", name, maxErr)
		}
	}
}

func TestConstantStream(t *testing.T) {
	const eps = 0.05
	for name, s := range variants(eps) {
		for i := 0; i < 5000; i++ {
			s.Update(42)
		}
		if q := s.Quantile(0.5); q != 42 {
			t.Errorf("%s: median of constant stream = %d, want 42", name, q)
		}
		if n := s.Count(); n != 5000 {
			t.Errorf("%s: Count = %d", name, n)
		}
	}
}

func TestSingleElement(t *testing.T) {
	for name, s := range variants(0.1) {
		s.Update(9)
		for _, phi := range []float64{0.01, 0.5, 0.99} {
			if q := s.Quantile(phi); q != 9 {
				t.Errorf("%s: quantile(%v) of single element = %d", name, phi, q)
			}
		}
	}
}

func TestEmptyQuantilePanics(t *testing.T) {
	for name, s := range variants(0.1) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Quantile on empty summary did not panic", name)
				}
			}()
			s.Quantile(0.5)
		}()
	}
}

func TestBadEpsPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5, math.NaN()} {
		for _, mk := range []func(float64) core.CashRegister{
			func(e float64) core.CashRegister { return NewAdaptive(e) },
			func(e float64) core.CashRegister { return NewTheory(e) },
			func(e float64) core.CashRegister { return NewArray(e) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("constructor with eps=%v did not panic", eps)
					}
				}()
				mk(eps)
			}()
		}
	}
}

func TestSpaceSublinear(t *testing.T) {
	const eps = 0.01
	const n = 50000
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 8}, n)
	for name, s := range variants(eps) {
		feed(s, data)
		space := s.SpaceBytes()
		raw := int64(n) * core.WordBytes
		if space <= 0 {
			t.Errorf("%s: non-positive space %d", name, space)
		}
		if space > raw/4 {
			t.Errorf("%s: space %dB not sublinear vs raw %dB", name, space, raw)
		}
	}
}

func TestAdaptiveHeapIntegrity(t *testing.T) {
	s := NewAdaptive(0.05)
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 9}, 3000)
	for i, x := range data {
		s.Update(x)
		if (i+1)%250 == 0 && !s.checkHeap() {
			t.Fatalf("heap invariant broken after %d updates", i+1)
		}
	}
}

func TestAdaptiveTupleCountGrowth(t *testing.T) {
	// GKAdaptive's list should stay far below n on random data.
	s := NewAdaptive(0.01)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 10}, 50000)
	feed(s, data)
	if tc := s.TupleCount(); tc > 4000 {
		t.Errorf("tuple count %d unexpectedly large for ε=0.01, n=50k", tc)
	}
}

func TestTheoryCompressBoundsSpace(t *testing.T) {
	// The theory variant must respect O((1/ε) log(εn)) up to constants:
	// 11/(2ε)·log2(2εn) is the paper's bound.
	const eps = 0.02
	const n = 100000
	s := NewTheory(eps)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 11}, n)
	feed(s, data)
	bound := 11.0 / (2 * eps) * math.Log2(2*eps*n)
	if float64(s.TupleCount()) > bound {
		t.Errorf("GKTheory tuples %d exceed GK bound %v", s.TupleCount(), bound)
	}
}

func TestArrayFlushIdempotent(t *testing.T) {
	s := NewArray(0.05)
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 12}, 1000)
	feed(s, data)
	s.Flush()
	before := s.TupleCount()
	s.Flush()
	if s.TupleCount() != before {
		t.Error("Flush on empty buffer changed the summary")
	}
	if got, want := s.Count(), int64(1000); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestArrayQueryMidBuffer(t *testing.T) {
	// Queries must see buffered but unflushed elements.
	s := NewArray(0.1)
	for i := 1; i <= 10; i++ {
		s.Update(uint64(i))
	}
	if q := s.Quantile(0.5); q < 4 || q > 7 {
		t.Errorf("median of 1..10 = %d, want ≈ 5", q)
	}
}

func TestRankEstimates(t *testing.T) {
	const eps = 0.01
	const n = 20000
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 13}, n)
	oracle := exact.New(data)
	for name, s := range variants(eps) {
		feed(s, data)
		for _, probe := range []uint64{1 << 18, 1 << 19, 3 << 18} {
			got := s.Rank(probe)
			want := oracle.Rank(probe)
			if math.Abs(float64(got-want)) > 2*eps*n {
				t.Errorf("%s: Rank(%d) = %d, exact %d (off > 2εn)", name, probe, got, want)
			}
		}
	}
}

func TestSortedOrderStillAccurate(t *testing.T) {
	// Figure 8's adversarial order: ascending input.
	const eps = 0.01
	const n = 30000
	data := streamgen.Generate(streamgen.Sorted{Inner: streamgen.Uniform{Bits: 32, Seed: 14}}, n)
	oracle := exact.New(data)
	for name, s := range variants(eps) {
		feed(s, data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%s on sorted input: max error %v > ε", name, maxErr)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 15}, 10000)
	for name := range variants(0.01) {
		a := variants(0.01)[name]
		b := variants(0.01)[name]
		feed(a, data)
		feed(b, data)
		for _, phi := range core.EvenPhis(0.1) {
			if a.Quantile(phi) != b.Quantile(phi) {
				t.Errorf("%s: nondeterministic quantile at phi=%v", name, phi)
			}
		}
	}
}

func TestQuantileMonotoneInPhi(t *testing.T) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 16}, 20000)
	for name, s := range variants(0.01) {
		feed(s, data)
		prev := uint64(0)
		for _, phi := range core.EvenPhis(0.02) {
			q := s.Quantile(phi)
			if q < prev {
				t.Errorf("%s: quantiles not monotone at phi=%v (%d < %d)", name, phi, q, prev)
				break
			}
			prev = q
		}
	}
}

func BenchmarkAdaptiveUpdate(b *testing.B) { benchUpdate(b, NewAdaptive(0.001)) }
func BenchmarkTheoryUpdate(b *testing.B)   { benchUpdate(b, NewTheory(0.001)) }
func BenchmarkArrayUpdate(b *testing.B)    { benchUpdate(b, NewArray(0.001)) }

func benchUpdate(b *testing.B, s core.CashRegister) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(data[i&(1<<16-1)])
	}
}

func BenchmarkAdaptiveUpdateBatch(b *testing.B) { benchUpdateBatch(b, NewAdaptive(0.001)) }
func BenchmarkTheoryUpdateBatch(b *testing.B)   { benchUpdateBatch(b, NewTheory(0.001)) }

// benchUpdateBatch drives the sort-merge-rebuild path, the heaviest
// consumer of the tcols scratch columns and the skiplist arena;
// ReportAllocs pins the steady state at zero heap growth per batch once
// the workspace has warmed up.
func benchUpdateBatch(b *testing.B, s core.BatchCashRegister) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<13)
	s.UpdateBatch(data) // warm the scratch columns, arena and node pool
	b.SetBytes(int64(len(data)) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateBatch(data)
	}
}
