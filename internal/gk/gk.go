// Package gk implements the Greenwald–Khanna quantile summary [GK01] in
// the three variants compared by the paper:
//
//   - Theory: the original algorithm with the band structure and the
//     periodic COMPRESS pass, giving the O((1/ε)·log(εn)) space bound.
//   - Adaptive: the variant the GK authors actually implemented — insert
//     with Δ = g_i + Δ_i − 1 and eagerly remove one removable tuple per
//     insertion, located through a min-heap (paper §2.1.1).
//   - Array: the journal version's re-implementation that buffers
//     arriving elements and merges them into a flat tuple array in batch,
//     trading pointer-chasing for sort+merge cache efficiency (§2.1.2).
//
// All variants maintain a list of tuples (v_i, g_i, Δ_i) with v_i ≤ v_{i+1}
// satisfying the GK invariants
//
//	(1)  Σ_{j≤i} g_j ≤ r(v_i) + 1 ≤ Σ_{j≤i} g_j + Δ_i
//	(2)  g_i + Δ_i ≤ ⌊2εn⌋
//
// which guarantee that every φ-quantile can be answered within εn.
package gk

import (
	"fmt"
	"math"
	"sort"

	"streamquantiles/internal/core"
)

// tuple is one summary entry: a stored element v, the gap g to the
// previous tuple's minimum rank, and the rank uncertainty Δ.
type tuple struct {
	v   uint64
	g   int64
	del int64
}

// tupleWords is the accounting size of one tuple: v, g, Δ (paper counts
// each stored element or counter as one 4-byte word).
const tupleWords = 3

// tcols stores a tuple list as parallel columns (struct-of-arrays):
// vals[i], gaps[i], dels[i] together are tuple i. The hot paths — the
// sorted merge sweeps and the query scans — touch one or two columns at
// a time, so the columnar layout streams through the cache at 8 bytes
// per element instead of 24. The tuple struct survives only as the
// value carrier of tupleSeq and the merge lookahead.
type tcols struct {
	vals []uint64
	gaps []int64
	dels []int64
}

// len reports the number of stored tuples.
func (c *tcols) len() int { return len(c.vals) }

// reset truncates the columns, keeping capacity.
func (c *tcols) reset() {
	c.vals = c.vals[:0]
	c.gaps = c.gaps[:0]
	c.dels = c.dels[:0]
}

// push appends one tuple to the columns.
func (c *tcols) push(v uint64, g, del int64) {
	c.vals = append(c.vals, v)
	c.gaps = append(c.gaps, g)
	c.dels = append(c.dels, del)
}

// at returns tuple i as a value.
func (c *tcols) at(i int) tuple {
	return tuple{v: c.vals[i], g: c.gaps[i], del: c.dels[i]}
}

// ensure resets the columns and guarantees capacity for want tuples
// without further allocation.
func (c *tcols) ensure(want int) {
	if cap(c.vals) < want {
		c.vals = make([]uint64, 0, want)
		c.gaps = make([]int64, 0, want)
		c.dels = make([]int64, 0, want)
		return
	}
	c.reset()
}

// seq yields the tuples in element order, for the shared query, codec
// and invariant implementations.
func (c *tcols) seq(yield func(t tuple) bool) {
	for i, v := range c.vals {
		if !yield(tuple{v: v, g: c.gaps[i], del: c.dels[i]}) {
			return
		}
	}
}

// checkEps validates the error parameter shared by all constructors.
func checkEps(eps float64) {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("gk: error parameter %v outside (0, 1)", eps))
	}
}

// threshold returns ⌊2εn⌋, the invariant-(2) capacity at stream length n.
func threshold(eps float64, n int64) int64 {
	return int64(2 * eps * float64(n))
}

// band returns the GK band of Δ at capacity p = ⌊2εn⌋. Bands partition
// the possible Δ values so that tuples whose Δ arrived earlier (smaller
// Δ, larger capacity) sit in higher bands; COMPRESS may only merge a
// tuple into a neighbour of equal or higher band. Band 0 is reserved for
// Δ = p and the highest band for Δ = 0, following [GK01] §2.1.
func band(del, p int64) int {
	switch {
	case del == p:
		return 0
	case del == 0:
		return 64
	}
	diff := p - del
	// Bands tile the diff axis: band α covers
	// [2^(α−1) + p mod 2^(α−1), 2^α + p mod 2^α).
	for alpha := 1; alpha < 63; alpha++ {
		lo := int64(1)<<(alpha-1) + p%(int64(1)<<(alpha-1))
		hi := int64(1)<<alpha + p%(int64(1)<<alpha)
		if diff >= lo && diff < hi {
			return alpha
		}
	}
	return 63
}

// tupleSeq abstracts in-order traversal over the tuple list so the three
// variants share one query implementation.
type tupleSeq func(yield func(t tuple) bool)

// queryQuantile implements the paper's extraction rule: report v_{i−1}
// for the smallest i with Σ_{j≤i} g_j + Δ_i > 1 + ⌊φn⌋ + max_i(g_i+Δ_i)/2.
func queryQuantile(seq tupleSeq, n int64, phi float64) uint64 {
	core.CheckPhi(phi)
	if n == 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, n) + 1 // 1-based rank
	var maxGap int64
	seq(func(t tuple) bool {
		if t.g+t.del > maxGap {
			maxGap = t.g + t.del
		}
		return true
	})
	bound := target + maxGap/2

	var (
		prev    uint64
		havePrv bool
		rsum    int64
		ans     uint64
		found   bool
	)
	seq(func(t tuple) bool {
		rsum += t.g
		if rsum+t.del > bound {
			if havePrv {
				ans = prev
			} else {
				ans = t.v // no predecessor: first tuple is the answer
			}
			found = true
			return false
		}
		prev = t.v
		havePrv = true
		return true
	})
	if !found {
		ans = prev // ran off the end: the maximum element
	}
	return ans
}

// queryQuantiles answers a batch of fractions in two passes over the
// tuple list (one for maxGap, one cumulative scan), instead of two
// passes per fraction.
func queryQuantiles(seq tupleSeq, n int64, phis []float64) []uint64 {
	if n == 0 {
		panic(core.ErrEmpty)
	}
	order := make([]int, len(phis))
	for i := range order {
		core.CheckPhi(phis[i])
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return phis[order[a]] < phis[order[b]] })

	var maxGap int64
	seq(func(t tuple) bool {
		if t.g+t.del > maxGap {
			maxGap = t.g + t.del
		}
		return true
	})

	out := make([]uint64, len(phis))
	oi := 0
	var (
		prev    uint64
		havePrv bool
		rsum    int64
	)
	seq(func(t tuple) bool {
		rsum += t.g
		for oi < len(order) {
			idx := order[oi]
			bound := core.TargetRank(phis[idx], n) + 1 + maxGap/2
			if rsum+t.del <= bound {
				break
			}
			if havePrv {
				out[idx] = prev
			} else {
				out[idx] = t.v
			}
			oi++
		}
		prev = t.v
		havePrv = true
		return oi < len(order)
	})
	for ; oi < len(order); oi++ {
		out[order[oi]] = prev // ran off the end: the maximum element
	}
	return out
}

// queryRank estimates r(x) = #{y < x} as the midpoint of the feasible
// rank interval of the largest stored element strictly below x. The
// cutoff must be strict: duplicates of x itself can be stored as tuples
// of accumulated weight, and folding them in would count x's own
// occurrences into its rank — at a heavy atom that overstates r(x) by
// the atom's multiplicity and drags combined-fold quantile answers off
// the atom (the Summary contract and the duplicate-atom regression
// tests pin the strict form).
func queryRank(seq tupleSeq, x uint64) int64 {
	var (
		rsum int64
		est  int64
	)
	seq(func(t tuple) bool {
		if t.v >= x {
			return false
		}
		rsum += t.g
		est = rsum + t.del/2
		return true
	})
	return est
}

// queryRanks answers a batch of rank queries in one pass over the tuple
// list: the queries are sorted once, then a single sweep maintains the
// running midpoint estimate and flushes each query when the sweep
// reaches the first tuple at or beyond it (the same strict cutoff as
// queryRank). Results are identical to calling queryRank per value.
func queryRanks(seq tupleSeq, xs []uint64) []int64 {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })

	out := make([]int64, len(xs))
	qi := 0
	var (
		rsum int64
		est  int64
	)
	seq(func(t tuple) bool {
		for qi < len(order) && xs[order[qi]] <= t.v {
			out[order[qi]] = est
			qi++
		}
		rsum += t.g
		est = rsum + t.del/2
		return qi < len(order)
	})
	for ; qi < len(order); qi++ {
		out[order[qi]] = est
	}
	return out
}

// appendQuerySnapshot flattens the tuple list into a core.QuerySnapshot
// with byte-identical answers to queryQuantile and queryRank.
//
// Quantile side: the live rule reports v_{i−1} for the smallest i with
// rsum_i + Δ_i > target + 1 + maxGap/2, i.e. with key_i > target for
// key_i = rsum_i + Δ_i − 1 − maxGap/2. key is not monotone in i, but
// "smallest i with key_i > t" equals "smallest i with runmax(key)_i > t"
// for every t, and the running maximum is non-decreasing — binary
// searchable. A sentinel entry carries the live rule's ran-off-the-end
// answer (the last stored element).
//
// Rank side: the live estimate for x is rsum_i + Δ_i/2 of the last
// tuple with v_i < x, and 0 before the first tuple — the strict-lookup
// (RStrict) snapshot form, so duplicates of x itself never count into
// its own rank.
func appendQuerySnapshot(seq tupleSeq, n int64, qs *core.QuerySnapshot) {
	qs.Reset()
	qs.N = n
	if n == 0 {
		return
	}
	var maxGap int64
	seq(func(t tuple) bool {
		if t.g+t.del > maxGap {
			maxGap = t.g + t.del
		}
		return true
	})
	half := maxGap / 2
	var (
		rsum    int64
		runmax  int64
		prev    uint64
		havePrv bool
	)
	seq(func(t tuple) bool {
		rsum += t.g
		if rsum+t.del > runmax {
			runmax = rsum + t.del
		}
		val := t.v // no predecessor: first tuple is the answer
		if havePrv {
			val = prev
		}
		qs.QVals = append(qs.QVals, val)
		qs.QKeys = append(qs.QKeys, runmax-1-half)
		qs.RVals = append(qs.RVals, t.v)
		qs.RRanks = append(qs.RRanks, rsum+t.del/2)
		prev = t.v
		havePrv = true
		return true
	})
	qs.RStrict = true
	if havePrv {
		// Ran off the end: the live rule answers the maximum element.
		qs.QVals = append(qs.QVals, prev)
		qs.QKeys = append(qs.QKeys, math.MaxInt64)
	}
}

// checkInvariants verifies GK invariants (1) and (2) against the true
// multiset; used by the tests of all three variants. sorted is the sorted
// stream content. With duplicates, a tuple stands for one specific copy
// of v whose tie-broken rank lies anywhere in [#<v, #≤v − 1], so
// invariant (1) holds iff that interval intersects the tuple's feasible
// interval [Σg − 1, Σg − 1 + Δ]. Invariant (2) uses p = ⌊2εn⌋.
func checkInvariants(seq tupleSeq, sorted []uint64, p int64) error {
	lowerBound := func(x uint64) int64 { // #elements < x
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}
	upperBound := func(x uint64) int64 { // #elements ≤ x
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}
	var (
		rsum int64
		prev uint64
		i    int
		err  error
	)
	seq(func(t tuple) bool {
		if i > 0 && t.v < prev {
			err = fmt.Errorf("tuple %d out of order: %d after %d", i, t.v, prev)
			return false
		}
		rsum += t.g
		rlo, rhi := lowerBound(t.v), upperBound(t.v)-1
		if rhi < rlo {
			err = fmt.Errorf("tuple %d stores element %d not in the stream", i, t.v)
			return false
		}
		// Intersect [rsum, rsum+Δ] with [rlo+1, rhi+1] (both for r+1).
		if rsum > rhi+1 || rsum+t.del < rlo+1 {
			err = fmt.Errorf("tuple %d (v=%d): invariant (1) violated: [%d,%d] misses rank+1 range [%d,%d]",
				i, t.v, rsum, rsum+t.del, rlo+1, rhi+1)
			return false
		}
		if i > 0 && t.g+t.del > p && p > 0 {
			err = fmt.Errorf("tuple %d (v=%d): invariant (2) violated: g+Δ = %d > %d",
				i, t.v, t.g+t.del, p)
			return false
		}
		prev = t.v
		i++
		return true
	})
	return err
}
