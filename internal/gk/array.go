package gk

import (
	"slices"

	"streamquantiles/internal/core"
)

// Array is the GKArray variant introduced by the journal version of the
// paper (§2.1.2): tuples live in a flat sorted array; arriving elements
// collect in a buffer of size Θ(|L|) and are merged into the array in one
// sorted sweep when the buffer fills. During the merge each tuple —
// pre-existing or new — is dropped when removable, exactly the
// GKAdaptive rule, but executed with sort+merge instead of per-element
// tree and heap searches, which is substantially more cache-friendly.
type Array struct {
	eps    float64
	n      int64
	tuples tcols
	spare  tcols // merge destination, swapped with tuples after each flush
	buf    []uint64
	maxLen int // high-water mark of len(tuples)+cap(buf), for accounting
}

// minBuffer bounds the batch size from below so tiny summaries still
// amortize their sorting cost.
const minBuffer = 64

// NewArray returns an empty GKArray summary with error parameter eps.
func NewArray(eps float64) *Array {
	checkEps(eps)
	return &Array{
		eps: eps,
		buf: make([]uint64, 0, minBuffer),
	}
}

// Eps returns the summary's error parameter.
func (a *Array) Eps() float64 { return a.eps }

// Count implements core.Summary.
func (a *Array) Count() int64 { return a.n }

// TupleCount reports |L| after flushing pending elements.
func (a *Array) TupleCount() int {
	a.Flush()
	return a.tuples.len()
}

// Update implements core.CashRegister.
func (a *Array) Update(x uint64) {
	a.n++
	a.buf = append(a.buf, x)
	if len(a.buf) == cap(a.buf) {
		a.flush()
	}
}

// Flush merges any buffered elements into the tuple array. Queries call
// it implicitly; it is exported for deterministic space measurement.
func (a *Array) Flush() {
	if len(a.buf) > 0 {
		a.flush()
	}
}

func (a *Array) flush() {
	slices.Sort(a.buf)
	p := threshold(a.eps, a.n)

	// mergeSorted (shared with the batch paths, see batch.go) applies the
	// removability rule g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋ through a
	// one-step lookahead during the merge. The first tuple of the merged
	// list (the exact minimum) is never removed, mirroring GK01's
	// boundary handling; the last never reaches the removability check.
	// The merge writes into the spare column set, which then swaps with
	// the live one — steady state allocates nothing.
	a.spare.ensure(a.tuples.len() + len(a.buf))
	mergeSorted(&a.tuples, a.buf, p, &a.spare)
	a.tuples, a.spare = a.spare, a.tuples

	// Resize the buffer to Θ(|L|) for the next batch.
	want := a.tuples.len()
	if want < minBuffer {
		want = minBuffer
	}
	if cap(a.buf) != want {
		a.buf = make([]uint64, 0, want)
	} else {
		a.buf = a.buf[:0]
	}
	if hw := a.tuples.len()*tupleWords + cap(a.buf); hw > a.maxLen {
		a.maxLen = hw
	}
}

// Quantile implements core.Summary. It flushes pending elements first.
func (a *Array) Quantile(phi float64) uint64 {
	a.Flush()
	return queryQuantile(a.seq, a.n, phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (a *Array) QuantileBatch(phis []float64) []uint64 {
	a.Flush()
	return queryQuantiles(a.seq, a.n, phis)
}

// RankBatch implements core.QuantileBatcher.
func (a *Array) RankBatch(xs []uint64) []int64 {
	a.Flush()
	return queryRanks(a.seq, xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (a *Array) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	a.Flush()
	appendQuerySnapshot(a.seq, a.n, qs)
}

// Rank implements core.Summary. It flushes pending elements first.
func (a *Array) Rank(x uint64) int64 {
	a.Flush()
	return queryRank(a.seq, x)
}

// SpaceBytes implements core.Summary: 3 words per tuple (live columns
// plus the retained merge double-buffer) plus the buffer capacity plus
// scalars. Buffers are charged at capacity because they are
// pre-allocated.
func (a *Array) SpaceBytes() int64 {
	words := int64(a.tuples.len()+cap(a.spare.vals))*tupleWords + int64(cap(a.buf)) + 4
	return words * core.WordBytes
}

func (a *Array) seq(yield func(t tuple) bool) {
	a.tuples.seq(yield)
}
