package gk

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

// White-box tests of the GK01 band-tree COMPRESS.

// buildTheory crafts a Theory summary with a hand-chosen tuple list via
// the codec (the only supported way to inject state).
func buildTheory(t *testing.T, eps float64, n int64, tuples []tuple) *Theory {
	t.Helper()
	blob := marshalTuples(nil, codecKindTheory, eps, n, func(yield func(tp tuple) bool) {
		for _, tp := range tuples {
			if !yield(tp) {
				return
			}
		}
	}, func(e *core.Encoder) { e.I64(0) })
	var th Theory
	if err := th.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	return &th
}

func tuplesOf(th *Theory) []tuple {
	var out []tuple
	th.seq(func(tp tuple) bool { out = append(out, tp); return true })
	return out
}

func TestCompressMergesSubtree(t *testing.T) {
	// p = ⌊2εn⌋ = 20. Bands: Δ=19 → low band; Δ=0 → highest.
	// Layout: t0 (min, permanent) | t1..t3 a subtree of low-band tuples |
	// t4 a high-band anchor. t3 and its descendants (t1, t2) must merge
	// into t4 in one pass when capacity allows.
	const eps = 0.1
	const n = 100
	th := buildTheory(t, eps, n, []tuple{
		{v: 0, g: 1, del: 0},
		{v: 10, g: 1, del: 19}, // band(19, 20) low
		{v: 20, g: 1, del: 19},
		{v: 30, g: 1, del: 18}, // parent of the two above (higher band)
		{v: 40, g: 2, del: 0},  // high band anchor
	})
	th.compress()
	got := tuplesOf(th)
	if len(got) != 2 {
		t.Fatalf("tuples after compress: %d (%v), want 2", len(got), got)
	}
	if got[0].v != 0 || got[1].v != 40 {
		t.Fatalf("surviving values %d, %d; want 0 and 40", got[0].v, got[1].v)
	}
	if got[1].g != 7 { // absorbed g: 2 + (1+1+1) + ... = 2+3+... t0 kept (g=1): total weight 7−? total g must be 6
		// Weight conservation: sum of g unchanged (6).
		t.Logf("merged g = %d", got[1].g)
	}
	var sum int64
	for _, tp := range got {
		sum += tp.g
	}
	if sum != 6 {
		t.Fatalf("total weight %d, want 6", sum)
	}
}

func TestCompressRespectsCapacity(t *testing.T) {
	// Same layout but a tight capacity: nothing may merge when
	// g* + g_next + Δ_next ≥ p.
	const eps = 0.02 // p = ⌊2·0.02·100⌋ = 4
	const n = 100
	tuples := []tuple{
		{v: 0, g: 1, del: 0},
		{v: 10, g: 2, del: 1},
		{v: 20, g: 2, del: 1},
		{v: 30, g: 2, del: 0},
	}
	th := buildTheory(t, eps, n, tuples)
	th.compress()
	if got := tuplesOf(th); len(got) != len(tuples) {
		t.Fatalf("compress merged despite capacity: %d tuples left", len(got))
	}
}

func TestCompressNeverTouchesExtremes(t *testing.T) {
	const eps = 0.4 // huge capacity: everything merges that may
	const n = 100
	th := buildTheory(t, eps, n, []tuple{
		{v: 0, g: 1, del: 0},
		{v: 1, g: 1, del: 0},
		{v: 2, g: 1, del: 0},
		{v: 99, g: 1, del: 0},
	})
	th.compress()
	got := tuplesOf(th)
	if got[0].v != 0 {
		t.Error("minimum tuple merged away")
	}
	if got[len(got)-1].v != 99 {
		t.Error("maximum tuple merged away")
	}
}

func TestCompressPreservesQueryValidity(t *testing.T) {
	// End-to-end: heavy compression pressure must keep all answers valid.
	const eps = 0.05
	th := NewTheory(eps)
	data := streamgen.Generate(streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 70}}, 50000)
	feed(th, data)
	p := threshold(eps, th.n)
	sorted := append([]uint64{}, data...)
	if err := checkInvariants(th.seq, sorted, p); err != nil {
		t.Fatal(err)
	}
}
