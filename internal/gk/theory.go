package gk

import (
	"streamquantiles/internal/core"
	"streamquantiles/internal/skiplist"
)

// tnode is the per-tuple state of the Theory variant.
type tnode struct {
	g, del int64
}

// Theory is the original Greenwald–Khanna algorithm [GK01]: insertions
// use Δ = ⌊2εn⌋ − 1 (Δ = 0 at the extremes), and a COMPRESS pass runs
// once every ⌊1/(2ε)⌋ insertions: sweeping right to left, tuple t_i and
// its band-tree descendants merge into t_{i+1} when
// band(Δ_i) ≤ band(Δ_{i+1}) and g*_i + g_{i+1} + Δ_{i+1} < ⌊2εn⌋, where
// g*_i is the combined weight of t_i's subtree (the maximal run of
// tuples to its left with strictly smaller bands — GK01's tree never
// needs materializing because subtrees are contiguous). This is the
// variant with the proven (11/2ε)·log(2εn) space bound.
type Theory struct {
	eps           float64
	n             int64
	list          *skiplist.List[uint64, *tnode]
	sinceCmp      int
	compressEvery int

	// Batch workspace (see batch.go), reused across UpdateBatch calls.
	// The skiplist arena is Reset at each rebuild, once the previous
	// list (whose nodes it backs) is dead.
	batchBuf     []uint64
	tupleScratch tcols
	mergeScratch tcols
	nodePool     []tnode
	arena        skiplist.Arena[uint64, *tnode]
}

// newTheoryIndexArena starts a sorted skiplist build with the variant's
// tower seed, salted so successive batch rebuilds draw fresh towers,
// with nodes drawn from the summary-owned arena.
func newTheoryIndexArena(salt uint64, ar *skiplist.Arena[uint64, *tnode]) *skiplist.Builder[uint64, *tnode] {
	return skiplist.NewBuilderArena[uint64, *tnode](0x7468656f7279^salt, ar)
}

// NewTheory returns an empty GKTheory summary with error parameter eps.
func NewTheory(eps float64) *Theory {
	checkEps(eps)
	every := int(1 / (2 * eps))
	if every < 1 {
		every = 1
	}
	return &Theory{
		eps:           eps,
		list:          skiplist.New[uint64, *tnode](0x7468656f7279),
		compressEvery: every,
	}
}

// Eps returns the summary's error parameter.
func (t *Theory) Eps() float64 { return t.eps }

// Count implements core.Summary.
func (t *Theory) Count() int64 { return t.n }

// TupleCount reports |L|.
func (t *Theory) TupleCount() int { return t.list.Len() }

// Update implements core.CashRegister.
func (t *Theory) Update(x uint64) {
	t.n++
	succ := t.list.Successor(x)
	del := threshold(t.eps, t.n) - 1
	if del < 0 {
		del = 0
	}
	if succ == nil {
		// New maximum: its rank is known exactly.
		del = 0
	} else if t.list.First() == succ && t.list.First().Key > x {
		// New minimum: rank 0, known exactly.
		del = 0
	}
	t.list.Insert(x, &tnode{g: 1, del: del})

	t.sinceCmp++
	if t.sinceCmp >= t.compressEvery {
		t.compress()
		t.sinceCmp = 0
	}
}

// compress performs GK01's COMPRESS: one right-to-left sweep merging
// whole band-tree subtrees. The tuple list is materialized into a slice
// (COMPRESS is already an O(|L|) pass), merged in place, and the skip
// list rebuilt from the survivors — simpler and more cache-friendly than
// in-place list surgery at the same asymptotic cost.
func (t *Theory) compress() {
	p := threshold(t.eps, t.n)
	if p <= 0 || t.list.Len() < 3 {
		return
	}
	type entry struct {
		v    uint64
		g    int64
		del  int64
		band int
		dead bool
	}
	tuples := make([]entry, 0, t.list.Len())
	for n := t.list.First(); n != nil; n = n.Next() {
		tuples = append(tuples, entry{
			v: n.Key, g: n.Value.g, del: n.Value.del,
			band: band(n.Value.del, p),
		})
	}

	merged := false
	rn := len(tuples) - 1 // surviving right neighbor of the tuple at i
	i := len(tuples) - 2
	for i >= 1 { // tuple 0 is the exact minimum, never merged
		// Subtree of t_i: the maximal run to its left with smaller bands.
		gstar := tuples[i].g
		j := i - 1
		for j >= 1 && tuples[j].band < tuples[i].band {
			gstar += tuples[j].g
			j--
		}
		if tuples[i].band <= tuples[rn].band &&
			gstar+tuples[rn].g+tuples[rn].del < p {
			// Merge t_i and its whole subtree into the right neighbor.
			tuples[rn].g += gstar
			for k := j + 1; k <= i; k++ {
				tuples[k].dead = true
			}
			merged = true
			i = j // rn unchanged: it absorbed everything in between
		} else {
			// No merge: t_i survives and becomes the right neighbor; its
			// descendants are considered individually next.
			rn = i
			i--
		}
	}
	if !merged {
		return
	}

	rebuilt := skiplist.New[uint64, *tnode](0x7468656f7279 ^ uint64(t.n))
	for _, e := range tuples {
		if !e.dead {
			rebuilt.Insert(e.v, &tnode{g: e.g, del: e.del})
		}
	}
	t.list = rebuilt
}

// Quantile implements core.Summary.
func (t *Theory) Quantile(phi float64) uint64 {
	return queryQuantile(t.seq, t.n, phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (t *Theory) QuantileBatch(phis []float64) []uint64 {
	return queryQuantiles(t.seq, t.n, phis)
}

// RankBatch implements core.QuantileBatcher.
func (t *Theory) RankBatch(xs []uint64) []int64 {
	return queryRanks(t.seq, xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (t *Theory) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	appendQuerySnapshot(t.seq, t.n, qs)
}

// Rank implements core.Summary.
func (t *Theory) Rank(x uint64) int64 {
	return queryRank(t.seq, x)
}

// SpaceBytes implements core.Summary: 3 words per tuple, skiplist index
// pointers, one pointer word per node→tuple reference, scalars.
func (t *Theory) SpaceBytes() int64 {
	words := int64(t.list.Len())*tupleWords +
		t.list.PointerWords() +
		int64(t.list.Len()) +
		4
	return words * core.WordBytes
}

func (t *Theory) seq(yield func(tp tuple) bool) {
	for n := t.list.First(); n != nil; n = n.Next() {
		if !yield(tuple{v: n.Key, g: n.Value.g, del: n.Value.del}) {
			return
		}
	}
}
