package gk

import (
	"math"
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func TestBiasedRelativeErrorGuarantee(t *testing.T) {
	const n = 50000
	const eps = 0.05
	for _, gen := range []streamgen.Generator{
		streamgen.Uniform{Bits: 24, Seed: 50},
		streamgen.Zipf{Bits: 20, S: 1.4, Seed: 51},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 52}},
	} {
		data := streamgen.Generate(gen, n)
		oracle := exact.New(data)
		b := NewBiased(eps)
		feed(b, data)
		// The defining property: error at rank φn is at most ε·φn, so the
		// low quantiles are proportionally sharper. Probe across five
		// orders of magnitude of φ.
		for _, phi := range []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 0.9} {
			got := b.Quantile(phi)
			absErr := oracle.QuantileError(got, phi) // normalized by n
			relLimit := eps * phi
			if absErr > relLimit+1.0/n {
				t.Errorf("%s: phi=%v: error %v exceeds ε·φ = %v",
					gen.Name(), phi, absErr, relLimit)
			}
		}
	}
}

func TestBiasedSharperThanUniformAtLowRanks(t *testing.T) {
	// At equal ε, the biased summary must answer φ = 0.001 much more
	// precisely than the uniform guarantee εn allows.
	const n = 100000
	const eps = 0.05
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 53}, n)
	oracle := exact.New(data)
	b := NewBiased(eps)
	feed(b, data)
	got := b.Quantile(0.001)
	absErr := oracle.QuantileError(got, 0.001)
	if absErr > eps*0.001+2.0/n {
		t.Errorf("low-rank error %v not proportionally small", absErr)
	}
}

func TestBiasedSpaceSublinear(t *testing.T) {
	const n = 200000
	b := NewBiased(0.01)
	feed(b, streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 54}, n))
	if sp := b.SpaceBytes(); sp > int64(n) { // ≪ 4n bytes raw
		t.Errorf("space %dB not sublinear", sp)
	}
	if tc := b.TupleCount(); tc > n/10 {
		t.Errorf("tuple count %d too large", tc)
	}
}

func TestBiasedCountAndEmpty(t *testing.T) {
	b := NewBiased(0.1)
	if b.Count() != 0 {
		t.Error("fresh count nonzero")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty summary did not panic")
			}
		}()
		b.Quantile(0.5)
	}()
	for i := uint64(1); i <= 100; i++ {
		b.Update(i)
	}
	if b.Count() != 100 {
		t.Errorf("count %d", b.Count())
	}
	if q := b.Quantile(0.5); q < 45 || q > 55 {
		t.Errorf("median %d", q)
	}
}

func TestBiasedRankMonotone(t *testing.T) {
	b := NewBiased(0.02)
	feed(b, streamgen.Generate(streamgen.Normal{Bits: 20, Sigma: 0.15, Seed: 55}, 30000))
	prev := int64(-1)
	for x := uint64(0); x < 1<<20; x += 1 << 14 {
		r := b.Rank(x)
		if r < prev {
			t.Fatalf("rank not monotone at %d: %d < %d", x, r, prev)
		}
		prev = r
	}
}

func TestBiasedInvariantHolds(t *testing.T) {
	const eps = 0.05
	b := NewBiased(eps)
	feed(b, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 56}, 20000))
	b.Flush()
	var rsum int64
	for i := 0; i < b.tuples.len(); i++ {
		tp := b.tuples.at(i)
		rsum += tp.g
		// Allow the (1+2ε) slack of successor-inherited Δs (see the
		// insertion discussion in biased.go).
		limit := int64(math.Ceil((2*eps*float64(rsum) + 1) * (1 + 2*eps)))
		if i > 0 && tp.g+tp.del > limit {
			t.Fatalf("tuple %d: g+Δ = %d exceeds biased invariant %d at rank %d",
				i, tp.g+tp.del, limit, rsum)
		}
	}
}

func BenchmarkBiasedUpdate(b *testing.B) {
	s := NewBiased(0.01)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(data[i&(1<<16-1)])
	}
}
