package gk

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

// TestBatchMatchesSingle pins the batched quantile path to the
// per-fraction path for every variant, including unsorted fractions.
func TestBatchMatchesSingle(t *testing.T) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 40}, 30000)
	phis := append(core.EvenPhis(0.01), 0.5, 0.001, 0.999, 0.25)
	for name, s := range variants(0.01) {
		feed(s, data)
		b, ok := s.(core.QuantileBatcher)
		if !ok {
			t.Fatalf("%s does not implement QuantileBatcher", name)
		}
		batch := b.QuantileBatch(phis)
		if len(batch) != len(phis) {
			t.Fatalf("%s: batch returned %d answers for %d fractions", name, len(batch), len(phis))
		}
		for i, phi := range phis {
			if single := s.Quantile(phi); single != batch[i] {
				t.Errorf("%s: phi=%v single=%d batch=%d", name, phi, single, batch[i])
			}
		}
	}
}

func TestBatchEmptyPanics(t *testing.T) {
	for name, s := range variants(0.1) {
		b := s.(core.QuantileBatcher)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: batch on empty summary did not panic", name)
				}
			}()
			b.QuantileBatch([]float64{0.5})
		}()
	}
}

func TestBatchSingleElement(t *testing.T) {
	for name, s := range variants(0.1) {
		s.Update(77)
		b := s.(core.QuantileBatcher)
		for _, q := range b.QuantileBatch([]float64{0.01, 0.5, 0.99}) {
			if q != 77 {
				t.Errorf("%s: single-element batch returned %d", name, q)
			}
		}
	}
}
