package gk

import "fmt"

// This file implements the Invariants() error contract (enforced by
// cmd/quantlint rule SQ005 and sampled at runtime under -tags sqcheck)
// for all GK variants. The checks are the stream-independent half of the
// GK correctness argument: tuple ordering, weight conservation
// Σg = n, and the capacity invariant (2) g_i + Δ_i ≤ ⌊2εn⌋ that the
// εn rank-error bound is proved from. The stream-dependent invariant (1)
// needs the sorted input and stays in checkInvariants (test-only).

// checkTuples verifies ordering, g ≥ 1, Δ ≥ 0, Σg == wantWeight, and —
// for every tuple but the first, when the capacity p = ⌊2εn⌋ is positive
// — the GK invariant (2) g+Δ ≤ p. kind names the variant in errors.
func checkTuples(kind string, seq tupleSeq, wantWeight, p int64) error {
	var (
		rsum int64
		prev uint64
		i    int
		err  error
	)
	seq(func(t tuple) bool {
		switch {
		case t.g < 1:
			err = fmt.Errorf("%s: tuple %d (v=%d) has weight g=%d < 1", kind, i, t.v, t.g)
		case t.del < 0:
			err = fmt.Errorf("%s: tuple %d (v=%d) has negative Δ=%d", kind, i, t.v, t.del)
		case i > 0 && t.v < prev:
			err = fmt.Errorf("%s: tuple %d out of order: %d after %d", kind, i, t.v, prev)
		case i > 0 && p > 0 && t.g+t.del > p:
			err = fmt.Errorf("%s: tuple %d (v=%d) violates invariant (2): g+Δ = %d > ⌊2εn⌋ = %d",
				kind, i, t.v, t.g+t.del, p)
		}
		if err != nil {
			return false
		}
		rsum += t.g
		prev = t.v
		i++
		return true
	})
	if err != nil {
		return err
	}
	if rsum != wantWeight {
		return fmt.Errorf("%s: weight not conserved: Σg = %d, want %d", kind, rsum, wantWeight)
	}
	return nil
}

// Invariants implements invariant.Checkable: tuple-list structure, weight
// conservation, the g+Δ capacity bound, and the integrity of the
// removal-cost heap that drives eager tuple eviction.
func (a *Adaptive) Invariants() error {
	if err := checkTuples("gk/adaptive", a.seq, a.n, threshold(a.eps, a.n)); err != nil {
		return err
	}
	return a.heapInvariants()
}

// heapInvariants verifies min-heap order, back-index integrity, cached
// removal costs, and that the heap holds exactly the removable tuples
// (every tuple with both a predecessor and a successor).
func (a *Adaptive) heapInvariants() error {
	for i, t := range a.heap {
		if t.hidx != i {
			return fmt.Errorf("gk/adaptive: heap slot %d back-index is %d", i, t.hidx)
		}
		if i > 0 && a.heap[(i-1)/2].cost > t.cost {
			return fmt.Errorf("gk/adaptive: heap order violated at slot %d", i)
		}
		cost, ok := a.computeCost(t)
		if !ok {
			return fmt.Errorf("gk/adaptive: heap slot %d holds a permanent tuple", i)
		}
		if cost != t.cost {
			return fmt.Errorf("gk/adaptive: heap slot %d cost stale: cached %d, actual %d",
				i, t.cost, cost)
		}
	}
	want := a.list.Len() - 2 // first and last tuples are permanent
	if want < 0 {
		want = 0
	}
	if len(a.heap) != want {
		return fmt.Errorf("gk/adaptive: heap holds %d tuples, want %d of %d",
			len(a.heap), want, a.list.Len())
	}
	return nil
}

// Invariants implements invariant.Checkable.
func (t *Theory) Invariants() error {
	if t.compressEvery < 1 {
		return fmt.Errorf("gk/theory: compress period %d < 1", t.compressEvery)
	}
	return checkTuples("gk/theory", t.seq, t.n, threshold(t.eps, t.n))
}

// Invariants implements invariant.Checkable. Buffered elements not yet
// merged into the tuple array carry weight outside Σg, so conservation is
// checked against n − len(buf).
func (a *Array) Invariants() error {
	if len(a.buf) > cap(a.buf) {
		return fmt.Errorf("gk/array: buffer length %d exceeds capacity %d", len(a.buf), cap(a.buf))
	}
	return checkTuples("gk/array", a.seq, a.n-int64(len(a.buf)), threshold(a.eps, a.n))
}

// Invariants implements invariant.Checkable. The biased summary replaces
// the uniform capacity with the rank-dependent f(r) = max(1, ⌊2εr⌋);
// because Δ values are inherited GK-style from the successor at insert
// time, the capacity a tuple is accountable to is the one at its maximum
// feasible rank r_i + Δ_i (the rank its Δ interval extends to), which is
// what the relative-error extraction rule consults.
func (b *Biased) Invariants() error {
	var (
		rsum int64
		prev uint64
		err  error
	)
	for i := 0; i < b.tuples.len(); i++ {
		t := b.tuples.at(i)
		switch {
		case t.g < 1:
			err = fmt.Errorf("gk/biased: tuple %d (v=%d) has weight g=%d < 1", i, t.v, t.g)
		case t.del < 0:
			err = fmt.Errorf("gk/biased: tuple %d (v=%d) has negative Δ=%d", i, t.v, t.del)
		case i > 0 && t.v < prev:
			err = fmt.Errorf("gk/biased: tuple %d out of order: %d after %d", i, t.v, prev)
		}
		if err != nil {
			return err
		}
		rsum += t.g
		if i > 0 && t.g+t.del > b.invariant(rsum+t.del) {
			return fmt.Errorf("gk/biased: tuple %d (v=%d) violates biased invariant: g+Δ = %d > f(%d) = %d",
				i, t.v, t.g+t.del, rsum+t.del, b.invariant(rsum+t.del))
		}
		prev = t.v
	}
	if want := b.n - int64(len(b.buf)); rsum != want {
		return fmt.Errorf("gk/biased: weight not conserved: Σg = %d, want %d", rsum, want)
	}
	return nil
}
