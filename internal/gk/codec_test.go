package gk

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

type marshaler interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

func TestCodecRoundTripAllVariants(t *testing.T) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 60}, 20000)
	rest := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 61}, 5000)
	phis := core.EvenPhis(0.02)

	cases := []struct {
		name    string
		mk      func() core.CashRegister
		mkEmpty func() marshaler
	}{
		{"Adaptive", func() core.CashRegister { return NewAdaptive(0.01) },
			func() marshaler { return NewAdaptive(0.5) }},
		{"Theory", func() core.CashRegister { return NewTheory(0.01) },
			func() marshaler { return NewTheory(0.5) }},
		{"Array", func() core.CashRegister { return NewArray(0.01) },
			func() marshaler { return NewArray(0.5) }},
	}
	for _, c := range cases {
		orig := c.mk()
		feed(orig, data)
		blob, err := orig.(marshaler).MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.name, err)
		}
		restored := c.mkEmpty()
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: unmarshal: %v", c.name, err)
		}
		rs := restored.(core.CashRegister)
		if rs.Count() != orig.Count() {
			t.Fatalf("%s: count %d vs %d", c.name, rs.Count(), orig.Count())
		}
		for _, phi := range phis {
			if rs.Quantile(phi) != orig.Quantile(phi) {
				t.Fatalf("%s: quantile(%v) differs after round trip", c.name, phi)
			}
		}
		// Continuing the stream must keep the summary valid (the heap and
		// skip list are rebuilt: this exercises them). Theory and Array
		// evolve deterministically from logical state, so they must stay
		// bit-identical to the uninterrupted run; Adaptive's heap breaks
		// cost ties by internal array order, which is not logical state,
		// so for it we check the ε guarantee instead.
		for _, x := range rest {
			rs.Update(x)
			orig.Update(x)
		}
		if c.name == "Adaptive" {
			all := append(append([]uint64{}, data...), rest...)
			oracle := exact.New(all)
			maxErr, _ := oracle.EvaluateSummary(rs, 0.01)
			if maxErr > 0.01 {
				t.Fatalf("Adaptive: restored summary max error %v exceeds ε after continuing", maxErr)
			}
			continue
		}
		for _, phi := range phis {
			if rs.Quantile(phi) != orig.Quantile(phi) {
				t.Fatalf("%s: quantile(%v) diverged after continuing", c.name, phi)
			}
		}
	}
}

func TestCodecAdaptiveHeapRebuilt(t *testing.T) {
	orig := NewAdaptive(0.02)
	feed(orig, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 62}, 10000))
	blob, _ := orig.MarshalBinary()
	restored := NewAdaptive(0.5)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !restored.checkHeap() {
		t.Error("heap invariant broken after unmarshal")
	}
}

func TestCodecRejectsWrongKind(t *testing.T) {
	a := NewAdaptive(0.1)
	a.Update(1)
	blob, _ := a.MarshalBinary()
	var th Theory
	if err := th.UnmarshalBinary(blob); err == nil {
		t.Error("Theory accepted an Adaptive encoding")
	}
	var arr Array
	if err := arr.UnmarshalBinary(blob); err == nil {
		t.Error("Array accepted an Adaptive encoding")
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	a := NewArray(0.05)
	feed(a, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 63}, 2000))
	blob, _ := a.MarshalBinary()
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(blob); cut += 3 {
		var b Array
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
	// Flip the tuple order to violate sortedness.
	var b Array
	if err := b.UnmarshalBinary([]byte{1, 0x13, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("accepted garbage header")
	}
}

func TestCodecArrayPreservesBuffer(t *testing.T) {
	a := NewArray(0.05)
	for i := uint64(0); i < 10; i++ { // stays entirely in the buffer
		a.Update(i)
	}
	blob, _ := a.MarshalBinary()
	var b Array
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 10 {
		t.Fatalf("count %d", b.Count())
	}
	if q := b.Quantile(0.5); q > 9 {
		t.Errorf("median %d after buffered round trip", q)
	}
}
