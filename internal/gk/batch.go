package gk

import "slices"

// Batched update paths (core.BatchCashRegister). The buffered variants
// (Array, Biased) accept batches by copying straight into their staging
// buffer — byte-identical to per-item Update, just without the
// per-element interface call and bounds churn. The pointer-based
// variants (Adaptive, Theory) switch strategy for large batches: sort
// the batch once and merge it into the materialized tuple list in one
// sorted sweep — the GKArray treatment of §2.1.2 applied to their tuple
// state — then rebuild the skiplist index in O(|L|) with
// skiplist.Builder. The merged list satisfies GK invariants (1) and (2)
// at the post-batch n (the removability rule g_i + g_{i+1} + Δ_{i+1} ≤
// ⌊2εn⌋ is checked against the final threshold, which upper-bounds
// every intermediate one), so answers stay within εn exactly as for the
// per-item path; the tuple lists themselves may legitimately differ.

// batchMin is the smallest batch for which the sort+merge+rebuild
// strategy beats per-item insertion; below it (or when the batch is
// tiny relative to |L|) the per-item path is used.
const batchMin = 32

// UpdateBatch implements core.BatchCashRegister. State is byte-identical
// to the equivalent sequence of Update calls.
func (a *Array) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		take := cap(a.buf) - len(a.buf)
		if take > len(xs) {
			take = len(xs)
		}
		a.buf = append(a.buf, xs[:take]...)
		a.n += int64(take)
		xs = xs[take:]
		if len(a.buf) == cap(a.buf) {
			a.flush()
		}
	}
}

// UpdateBatch implements core.BatchCashRegister. State is byte-identical
// to the equivalent sequence of Update calls.
func (b *Biased) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		take := cap(b.buf) - len(b.buf)
		if take > len(xs) {
			take = len(xs)
		}
		b.buf = append(b.buf, xs[:take]...)
		b.n += int64(take)
		xs = xs[take:]
		if len(b.buf) == cap(b.buf) {
			b.flush()
		}
	}
}

// mergeSorted merges a sorted batch of new elements into a sorted tuple
// list, applying the GKArray rules at capacity p: new elements take
// Δ = g_succ + Δ_succ − 1 from their successor in the old list (0 past
// the maximum), and each merged tuple passes through a one-step
// lookahead that drops it when removable (g_i + g_{i+1} + Δ_{i+1} ≤ p;
// never the first or last tuple). Results are appended to out, which
// the caller supplies with adequate capacity.
func mergeSorted(tuples []tuple, batch []uint64, p int64, out []tuple) []tuple {
	var (
		pending    tuple
		hasPending bool
	)
	emit := func(t tuple) {
		if hasPending {
			if len(out) > 0 && pending.g+t.g+t.del <= p {
				t.g += pending.g
			} else {
				out = append(out, pending)
			}
		}
		pending = t
		hasPending = true
	}
	ti, bi := 0, 0
	for ti < len(tuples) || bi < len(batch) {
		if bi < len(batch) && (ti == len(tuples) || batch[bi] < tuples[ti].v) {
			var del int64
			if ti < len(tuples) {
				del = tuples[ti].g + tuples[ti].del - 1
			}
			emit(tuple{v: batch[bi], g: 1, del: del})
			bi++
		} else {
			emit(tuples[ti])
			ti++
		}
	}
	if hasPending {
		out = append(out, pending)
	}
	return out
}

// stageBatch copies xs into the staging buffer (grown geometrically,
// reused across batches) and sorts it.
func stageBatch(buf *[]uint64, xs []uint64) []uint64 {
	if cap(*buf) < len(xs) {
		*buf = make([]uint64, len(xs)+len(xs)/2)
	}
	batch := (*buf)[:len(xs)]
	copy(batch, xs)
	slices.Sort(batch)
	return batch
}

// UpdateBatch implements core.BatchCashRegister. Large batches are
// sorted and merged into the tuple list in one sweep, then the skiplist
// index and the removal-cost heap are rebuilt; answers match the
// per-item path within the same εn bound.
func (a *Adaptive) UpdateBatch(xs []uint64) {
	if len(xs) < batchMin || len(xs)*8 < a.list.Len() {
		for _, x := range xs {
			a.Update(x)
		}
		return
	}
	batch := stageBatch(&a.batchBuf, xs)

	llen := a.list.Len()
	if cap(a.tupleScratch) < llen {
		a.tupleScratch = make([]tuple, llen+llen/2)
	}
	old := a.tupleScratch[:llen]
	i := 0
	for n := a.list.First(); n != nil; n = n.Next() {
		old[i] = tuple{v: n.Key, g: n.Value.g, del: n.Value.del}
		i++
	}

	a.n += int64(len(batch))
	want := llen + len(batch)
	if cap(a.mergeScratch) < want {
		a.mergeScratch = make([]tuple, 0, want)
	}
	merged := mergeSorted(old, batch, threshold(a.eps, a.n), a.mergeScratch[:0])
	a.mergeScratch = merged
	a.rebuild(merged)
}

// rebuild replaces the skiplist and heap with fresh structures over the
// given tuple list: an O(|L|) sorted build, anodes drawn from a reused
// pool, and a bottom-up heapify of every removable (middle) tuple.
func (a *Adaptive) rebuild(ts []tuple) {
	b := newAdaptiveIndex(uint64(a.n))
	if cap(a.nodePool) < len(ts) {
		a.nodePool = make([]anode, len(ts)+len(ts)/2)
	}
	pool := a.nodePool[:len(ts)]
	if cap(a.heap) < len(ts) {
		a.heap = make([]*anode, 0, len(ts))
	}
	heap := a.heap[:0]
	for i, t := range ts {
		an := &pool[i]
		*an = anode{g: t.g, del: t.del, hidx: -1}
		an.node = b.Append(t.v, an)
	}
	a.list = b.Finish()
	for i := 1; i+1 < len(ts); i++ {
		an := &pool[i]
		an.cost = an.g + pool[i+1].g + pool[i+1].del
		an.hidx = len(heap)
		heap = append(heap, an)
	}
	a.heap = heap
	for i := len(heap)/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
}

// UpdateBatch implements core.BatchCashRegister. Large batches are
// sorted and merged in one sweep — the merge's removability pass doubles
// as a COMPRESS, so the compression countdown restarts afterwards.
func (t *Theory) UpdateBatch(xs []uint64) {
	if len(xs) < batchMin || len(xs)*8 < t.list.Len() {
		for _, x := range xs {
			t.Update(x)
		}
		return
	}
	batch := stageBatch(&t.batchBuf, xs)

	llen := t.list.Len()
	if cap(t.tupleScratch) < llen {
		t.tupleScratch = make([]tuple, llen+llen/2)
	}
	old := t.tupleScratch[:llen]
	i := 0
	for n := t.list.First(); n != nil; n = n.Next() {
		old[i] = tuple{v: n.Key, g: n.Value.g, del: n.Value.del}
		i++
	}

	t.n += int64(len(batch))
	want := llen + len(batch)
	if cap(t.mergeScratch) < want {
		t.mergeScratch = make([]tuple, 0, want)
	}
	merged := mergeSorted(old, batch, threshold(t.eps, t.n), t.mergeScratch[:0])
	t.mergeScratch = merged

	b := newTheoryIndex(uint64(t.n))
	for _, e := range merged {
		b.Append(e.v, &tnode{g: e.g, del: e.del})
	}
	t.list = b.Finish()
	t.sinceCmp = 0
}
