package gk

import "slices"

// Batched update paths (core.BatchCashRegister). The buffered variants
// (Array, Biased) accept batches by copying straight into their staging
// buffer — byte-identical to per-item Update, just without the
// per-element interface call and bounds churn. The pointer-based
// variants (Adaptive, Theory) switch strategy for large batches: sort
// the batch once and merge it into the materialized tuple list in one
// sorted sweep — the GKArray treatment of §2.1.2 applied to their tuple
// state — then rebuild the skiplist index in O(|L|) with
// skiplist.Builder. The merged list satisfies GK invariants (1) and (2)
// at the post-batch n (the removability rule g_i + g_{i+1} + Δ_{i+1} ≤
// ⌊2εn⌋ is checked against the final threshold, which upper-bounds
// every intermediate one), so answers stay within εn exactly as for the
// per-item path; the tuple lists themselves may legitimately differ.

// batchMin is the smallest batch for which the sort+merge+rebuild
// strategy beats per-item insertion; below it (or when the batch is
// tiny relative to |L|) the per-item path is used.
const batchMin = 32

// UpdateBatch implements core.BatchCashRegister. State is byte-identical
// to the equivalent sequence of Update calls.
func (a *Array) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		take := cap(a.buf) - len(a.buf)
		if take > len(xs) {
			take = len(xs)
		}
		a.buf = append(a.buf, xs[:take]...)
		a.n += int64(take)
		xs = xs[take:]
		if len(a.buf) == cap(a.buf) {
			a.flush()
		}
	}
}

// UpdateBatch implements core.BatchCashRegister. State is byte-identical
// to the equivalent sequence of Update calls.
func (b *Biased) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		take := cap(b.buf) - len(b.buf)
		if take > len(xs) {
			take = len(xs)
		}
		b.buf = append(b.buf, xs[:take]...)
		b.n += int64(take)
		xs = xs[take:]
		if len(b.buf) == cap(b.buf) {
			b.flush()
		}
	}
}

// mergeSorted merges a sorted batch of new elements into a sorted tuple
// column set, applying the GKArray rules at capacity p: new elements
// take Δ = g_succ + Δ_succ − 1 from their successor in the old list (0
// past the maximum), and each merged tuple passes through a one-step
// lookahead that drops it when removable (g_i + g_{i+1} + Δ_{i+1} ≤ p;
// never the first or last tuple). Results are appended to out, which
// the caller supplies reset and with adequate capacity. The sweep reads
// the value column for every comparison and touches the gap/Δ columns
// only at the old list's merge positions — the cache-friendly layout
// the GKArray variant exists for.
func mergeSorted(src *tcols, batch []uint64, p int64, out *tcols) {
	var (
		pending    tuple
		hasPending bool
	)
	emit := func(t tuple) {
		if hasPending {
			if out.len() > 0 && pending.g+t.g+t.del <= p {
				t.g += pending.g
			} else {
				out.push(pending.v, pending.g, pending.del)
			}
		}
		pending = t
		hasPending = true
	}
	ti, bi := 0, 0
	for ti < src.len() || bi < len(batch) {
		if bi < len(batch) && (ti == src.len() || batch[bi] < src.vals[ti]) {
			var del int64
			if ti < src.len() {
				del = src.gaps[ti] + src.dels[ti] - 1
			}
			emit(tuple{v: batch[bi], g: 1, del: del})
			bi++
		} else {
			emit(src.at(ti))
			ti++
		}
	}
	if hasPending {
		out.push(pending.v, pending.g, pending.del)
	}
}

// stageBatch copies xs into the staging buffer (grown geometrically,
// reused across batches) and sorts it.
func stageBatch(buf *[]uint64, xs []uint64) []uint64 {
	if cap(*buf) < len(xs) {
		*buf = make([]uint64, len(xs)+len(xs)/2)
	}
	batch := (*buf)[:len(xs)]
	copy(batch, xs)
	slices.Sort(batch)
	return batch
}

// UpdateBatch implements core.BatchCashRegister. Large batches are
// sorted and merged into the tuple list in one sweep, then the skiplist
// index and the removal-cost heap are rebuilt; answers match the
// per-item path within the same εn bound.
func (a *Adaptive) UpdateBatch(xs []uint64) {
	if len(xs) < batchMin || len(xs)*8 < a.list.Len() {
		for _, x := range xs {
			a.Update(x)
		}
		return
	}
	batch := stageBatch(&a.batchBuf, xs)

	llen := a.list.Len()
	a.tupleScratch.ensure(llen + llen/2)
	for n := a.list.First(); n != nil; n = n.Next() {
		a.tupleScratch.push(n.Key, n.Value.g, n.Value.del)
	}

	a.n += int64(len(batch))
	a.mergeScratch.ensure(llen + len(batch))
	mergeSorted(&a.tupleScratch, batch, threshold(a.eps, a.n), &a.mergeScratch)
	a.rebuild(&a.mergeScratch)
}

// rebuild replaces the skiplist and heap with fresh structures over the
// given tuple columns: an O(|L|) sorted build with skiplist nodes and
// towers drawn from the summary-owned arena (the old list is dead by
// now, so its slabs are recycled), anodes drawn from a reused pool, and
// a bottom-up heapify of every removable (middle) tuple.
func (a *Adaptive) rebuild(ts *tcols) {
	k := ts.len()
	a.arena.Reset()
	b := newAdaptiveIndexArena(uint64(a.n), &a.arena)
	if cap(a.nodePool) < k {
		a.nodePool = make([]anode, k+k/2)
	}
	pool := a.nodePool[:k]
	if cap(a.heap) < k {
		a.heap = make([]*anode, 0, k)
	}
	heap := a.heap[:0]
	for i := 0; i < k; i++ {
		an := &pool[i]
		*an = anode{g: ts.gaps[i], del: ts.dels[i], hidx: -1}
		an.node = b.Append(ts.vals[i], an)
	}
	a.list = b.Finish()
	for i := 1; i+1 < k; i++ {
		an := &pool[i]
		an.cost = an.g + pool[i+1].g + pool[i+1].del
		an.hidx = len(heap)
		heap = append(heap, an)
	}
	a.heap = heap
	for i := len(heap)/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
}

// UpdateBatch implements core.BatchCashRegister. Large batches are
// sorted and merged in one sweep — the merge's removability pass doubles
// as a COMPRESS, so the compression countdown restarts afterwards.
func (t *Theory) UpdateBatch(xs []uint64) {
	if len(xs) < batchMin || len(xs)*8 < t.list.Len() {
		for _, x := range xs {
			t.Update(x)
		}
		return
	}
	batch := stageBatch(&t.batchBuf, xs)

	llen := t.list.Len()
	t.tupleScratch.ensure(llen + llen/2)
	for n := t.list.First(); n != nil; n = n.Next() {
		t.tupleScratch.push(n.Key, n.Value.g, n.Value.del)
	}

	t.n += int64(len(batch))
	t.mergeScratch.ensure(llen + len(batch))
	merged := &t.mergeScratch
	mergeSorted(&t.tupleScratch, batch, threshold(t.eps, t.n), merged)

	t.arena.Reset()
	b := newTheoryIndexArena(uint64(t.n), &t.arena)
	k := merged.len()
	if cap(t.nodePool) < k {
		t.nodePool = make([]tnode, k+k/2)
	}
	pool := t.nodePool[:k]
	for i := 0; i < k; i++ {
		pool[i] = tnode{g: merged.gaps[i], del: merged.dels[i]}
		b.Append(merged.vals[i], &pool[i])
	}
	t.list = b.Finish()
	t.sinceCmp = 0
}
