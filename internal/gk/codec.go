package gk

import "streamquantiles/internal/core"

// All three GK variants serialize as their logical content — ε, n, and
// the ordered tuple list — plus any buffered elements. The auxiliary
// index structures (skip list, heap) are rebuilt on load; they are
// derived state, and rebuilding keeps the encoding small and
// implementation-independent.

const (
	codecVersion    = 1
	codecKindAdapt  = 0x11
	codecKindTheory = 0x12
	codecKindArray  = 0x13
)

func marshalTuples(dst []byte, kind byte, eps float64, n int64, seq tupleSeq, extra func(e *core.Encoder)) []byte {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.U64(uint64(kind))
	e.F64(eps)
	e.I64(n)
	var count uint64
	seq(func(t tuple) bool { count++; return true })
	e.U64(count)
	seq(func(t tuple) bool {
		e.U64(t.v)
		e.I64(t.g)
		e.I64(t.del)
		return true
	})
	if extra != nil {
		extra(&e)
	}
	return e.Bytes()
}

func unmarshalTuples(kind byte, data []byte) (eps float64, n int64, cols tcols, dec *core.Decoder, err error) {
	dec = core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return 0, 0, tcols{}, nil, core.Corruptf("gk: unsupported encoding version %d", v)
	}
	if k := dec.U64(); k != uint64(kind) && dec.Err() == nil {
		return 0, 0, tcols{}, nil, core.Corruptf("gk: encoding is for variant %#x, want %#x", k, kind)
	}
	eps = dec.F64()
	n = dec.I64()
	count := dec.Len()
	if dec.Err() != nil {
		return 0, 0, tcols{}, nil, dec.Err()
	}
	// Positive-form comparisons so NaN (which fails every comparison)
	// is rejected rather than slipping through to checkEps's panic.
	if !(eps > 0 && eps < 1) || n < 0 {
		return 0, 0, tcols{}, nil, core.Corruptf("gk: implausible encoded parameters eps=%v n=%d", eps, n)
	}
	// Every encoded tuple costs at least three bytes, so a count beyond
	// the input length is hostile; reject it before the decode loop.
	if count > len(data) {
		return 0, 0, tcols{}, nil, core.Corruptf("gk: tuple count %d exceeds input length %d", count, len(data))
	}
	var prev uint64
	for i := 0; i < count; i++ {
		t := tuple{v: dec.U64(), g: dec.I64(), del: dec.I64()}
		if dec.Err() != nil {
			return 0, 0, tcols{}, nil, dec.Err()
		}
		if i > 0 && t.v < prev {
			return 0, 0, tcols{}, nil, core.Corruptf("gk: encoded tuples out of order at %d", i)
		}
		if t.g < 0 || t.del < 0 {
			return 0, 0, tcols{}, nil, core.Corruptf("gk: negative g or Δ at tuple %d", i)
		}
		prev = t.v
		cols.push(t.v, t.g, t.del)
	}
	return eps, n, cols, dec, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *Adaptive) MarshalBinary() ([]byte, error) { return a.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (a *Adaptive) AppendBinary(dst []byte) ([]byte, error) {
	return marshalTuples(dst, codecKindAdapt, a.eps, a.n, a.seq, nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the skip list
// and heap are rebuilt from the tuple list.
func (a *Adaptive) UnmarshalBinary(data []byte) error {
	eps, n, tuples, dec, err := unmarshalTuples(codecKindAdapt, data)
	if err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("gk: %d trailing bytes", dec.Remaining())
	}
	na := NewAdaptive(eps)
	na.n = n
	for i := 0; i < tuples.len(); i++ {
		an := &anode{g: tuples.gaps[i], del: tuples.dels[i], hidx: -1}
		an.node = na.list.Insert(tuples.vals[i], an)
	}
	// Wire the heap: every tuple except the last has a successor.
	for node := na.list.First(); node != nil; node = node.Next() {
		na.heapPush(node.Value)
	}
	*a = *na
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Theory) MarshalBinary() ([]byte, error) { return t.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler.
func (t *Theory) AppendBinary(dst []byte) ([]byte, error) {
	return marshalTuples(dst, codecKindTheory, t.eps, t.n, t.seq, func(e *core.Encoder) {
		e.I64(int64(t.sinceCmp))
	}), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Theory) UnmarshalBinary(data []byte) error {
	eps, n, tuples, dec, err := unmarshalTuples(codecKindTheory, data)
	if err != nil {
		return err
	}
	sinceCmp := int(dec.I64())
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("gk: %d trailing bytes", dec.Remaining())
	}
	nt := NewTheory(eps)
	nt.n = n
	nt.sinceCmp = sinceCmp
	for i := 0; i < tuples.len(); i++ {
		nt.list.Insert(tuples.vals[i], &tnode{g: tuples.gaps[i], del: tuples.dels[i]})
	}
	*t = *nt
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler. Pending buffered
// elements are included, so marshalling does not disturb the batch
// schedule.
func (a *Array) MarshalBinary() ([]byte, error) { return a.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler.
func (a *Array) AppendBinary(dst []byte) ([]byte, error) {
	return marshalTuples(dst, codecKindArray, a.eps, a.n, a.seq, func(e *core.Encoder) {
		e.U64s(a.buf)
		e.U64(uint64(cap(a.buf)))
	}), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *Array) UnmarshalBinary(data []byte) error {
	eps, n, tuples, dec, err := unmarshalTuples(codecKindArray, data)
	if err != nil {
		return err
	}
	buffered := dec.U64s()
	bufCap := int(dec.U64())
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("gk: %d trailing bytes", dec.Remaining())
	}
	if bufCap < len(buffered) || bufCap > 1<<22 {
		return core.Corruptf("gk: implausible buffer capacity %d", bufCap)
	}
	na := NewArray(eps)
	na.n = n
	na.tuples = tuples
	if bufCap < minBuffer {
		bufCap = minBuffer
	}
	na.buf = make([]uint64, len(buffered), bufCap)
	copy(na.buf, buffered)
	*a = *na
	return nil
}
