package invariant

import (
	"errors"
	"testing"
)

// countingCheckable records how many times Invariants runs and returns a
// configurable error.
type countingCheckable struct {
	calls int
	err   error
}

func (c *countingCheckable) Invariants() error {
	c.calls++
	return c.err
}

func TestCheckAlwaysRuns(t *testing.T) {
	c := &countingCheckable{}
	if err := Check(c); err != nil {
		t.Fatalf("Check returned %v, want nil", err)
	}
	c.err = errors.New("boom")
	if err := Check(c); err == nil {
		t.Fatal("Check swallowed the violation")
	}
	if c.calls != 2 {
		t.Fatalf("Invariants ran %d times, want 2", c.calls)
	}
}

func TestSamplerHonorsBuildTag(t *testing.T) {
	c := &countingCheckable{}
	s := Every(4)
	for i := 0; i < 16; i++ {
		if err := s.Check(c); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	want := 0
	if Enabled {
		want = 4 // every 4th of 16 calls
	}
	if c.calls != want {
		t.Fatalf("Invariants ran %d times, want %d (Enabled=%v)", c.calls, want, Enabled)
	}
}

func TestSamplerSurfacesViolations(t *testing.T) {
	if !Enabled {
		t.Skip("needs -tags sqcheck")
	}
	c := &countingCheckable{err: errors.New("structural rot")}
	s := Every(1)
	if err := s.Check(c); err == nil {
		t.Fatal("sampler swallowed the violation")
	}
}

func TestSamplerZeroValueNeverChecks(t *testing.T) {
	c := &countingCheckable{err: errors.New("boom")}
	var s Sampler
	for i := 0; i < 8; i++ {
		if err := s.Check(c); err != nil {
			t.Fatalf("zero-value sampler ran a check: %v", err)
		}
	}
	if c.calls != 0 {
		t.Fatalf("Invariants ran %d times, want 0", c.calls)
	}
}

func TestEveryClampsBelowOne(t *testing.T) {
	c := &countingCheckable{}
	s := Every(0)
	for i := 0; i < 3; i++ {
		_ = s.Check(c)
	}
	want := 0
	if Enabled {
		want = 3
	}
	if c.calls != want {
		t.Fatalf("Invariants ran %d times, want %d", c.calls, want)
	}
}
