//go:build !sqcheck

package invariant

// Enabled reports whether the sqcheck build tag turned the sampling
// sanitizer on for this build.
const Enabled = false
