// Package invariant is the runtime sanitizer of the library: every
// summary type exposes an Invariants() error method performing the deep
// structural checks its accuracy proof rests on (GK's g+Δ ≤ ⌊2εn⌋ bound,
// q-digest's weight conservation, KLL's exact level-weight accounting,
// dyadic per-level additivity, …), and this package provides the shared
// plumbing for invoking them.
//
// Check runs a summary's deep checks unconditionally — tests call it at
// natural checkpoints. Sampler (built with Every) amortizes the cost over
// a hot loop and is compiled down to a no-op counter bump unless the
// build tag "sqcheck" is set, so fuzz harnesses can sprinkle checks into
// every Update without slowing untagged builds:
//
//	ck := invariant.Every(64)
//	for _, x := range stream {
//		s.Update(x)
//		if err := ck.Check(s); err != nil {
//			t.Fatal(err)
//		}
//	}
//
// The static analyzer in cmd/quantlint (rule SQ005) enforces that every
// summary type registered in quantiles.go implements Checkable.
package invariant

// Checkable is implemented by every summary in the library: Invariants
// re-verifies the structural properties the summary's error guarantee is
// proved from and reports the first violation found. A nil return means
// the structure is sound; it says nothing about accuracy against the
// stream (the brute-force tests cover that).
type Checkable interface {
	Invariants() error
}

// Check runs c's deep invariant checks unconditionally and returns the
// first violation, or nil. It ignores the sqcheck build tag; use a
// Sampler inside hot loops.
func Check(c Checkable) error {
	return c.Invariants()
}

// Sampler invokes deep checks on every n-th call, and only when the
// build tag "sqcheck" is set. The zero value checks never; build one
// with Every.
type Sampler struct {
	every uint64
	calls uint64
}

// Every returns a Sampler that runs Invariants once per n calls to its
// Check method under -tags sqcheck, and never otherwise. n < 1 is
// treated as 1 (check on every call).
func Every(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{every: uint64(n)}
}

// Check counts one call and, when the sampler is due and the sqcheck tag
// is on, runs c.Invariants. It returns nil on off-cycle calls and in
// untagged builds.
func (s *Sampler) Check(c Checkable) error {
	if !Enabled || s.every == 0 {
		return nil
	}
	s.calls++
	if s.calls%s.every != 0 {
		return nil
	}
	return c.Invariants()
}
