// Package retry implements capped exponential backoff with full jitter
// — the storage-retry discipline the checkpoint layer introduced, made
// reusable: the checkpoint writer retries transient filesystem errors
// through it, and the quantstress soak harness drives its
// fault-recovery loop with the same policy.
//
// The schedule is the classic AWS "full jitter" variant: the delay
// before retry r is drawn uniformly from [0, min(Base·2ʳ, Max)), which
// decorrelates concurrent retriers while keeping the expected backoff
// exponential. Jitter is seeded (SplitMix64), so a pinned seed gives a
// reproducible schedule — the property every deterministic harness in
// this repository is built on.
package retry

import (
	"time"

	"streamquantiles/internal/xhash"
)

// Policy caps the retries of an operation against transient failures.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included); values below 1 mean one attempt, i.e. no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay. The actual sleep is drawn uniformly from
	// [0, delay) — "full jitter" — to decorrelate concurrent retriers.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
}

// Default mirrors the checkpoint layer's historical policy: five
// attempts, millisecond base, 100ms cap.
var Default = Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}

// defaultSeed keeps the out-of-the-box jitter schedule identical to the
// one the checkpoint layer shipped with.
const defaultSeed = 0x5eedc0de

// Retrier executes operations under a Policy. It is not goroutine-safe
// (the jitter RNG is sequential); give each retrying goroutine its own.
type Retrier struct {
	policy Policy
	rng    *xhash.SplitMix64
	sleep  func(time.Duration)
}

// Option customizes New.
type Option func(*Retrier)

// WithSleep substitutes the sleeping function used between retries;
// tests record the requested delays instead of actually waiting.
func WithSleep(sleep func(time.Duration)) Option {
	return func(r *Retrier) { r.sleep = sleep }
}

// WithSeed seeds the backoff jitter; the default seed is fine for
// production, tests pin it for reproducible schedules.
func WithSeed(seed uint64) Option {
	return func(r *Retrier) { r.rng = xhash.NewSplitMix64(seed) }
}

// New builds a Retrier for the policy.
func New(p Policy, opts ...Option) *Retrier {
	r := &Retrier{
		policy: p,
		rng:    xhash.NewSplitMix64(defaultSeed),
		sleep:  time.Sleep,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Attempts returns the normalized total number of tries (at least 1).
func (r *Retrier) Attempts() int {
	if r.policy.MaxAttempts < 1 {
		return 1
	}
	return r.policy.MaxAttempts
}

// Backoff computes the jittered delay before retry number attempt
// (0-based: Backoff(0) precedes the second try).
func (r *Retrier) Backoff(attempt int) time.Duration {
	delay := r.policy.BaseDelay
	if delay <= 0 {
		delay = time.Millisecond
	}
	for i := 0; i < attempt && delay < r.policy.MaxDelay; i++ {
		delay *= 2
	}
	if r.policy.MaxDelay > 0 && delay > r.policy.MaxDelay {
		delay = r.policy.MaxDelay
	}
	// Full jitter: uniform in [0, delay). Never negative, may be zero.
	return time.Duration(r.rng.Uint64n(uint64(delay)))
}

// Do runs op until it succeeds, the attempt budget runs out, or an
// error is not retryable. A nil retryable predicate retries nothing
// (every error is final). The returned error is op's last.
func (r *Retrier) Do(op func() error, retryable func(error) bool) error {
	attempts := r.Attempts()
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || retryable == nil || !retryable(err) {
			return err
		}
		r.sleep(r.Backoff(attempt))
	}
}
