package retry

import (
	"errors"
	"testing"
	"time"
)

// markedTransient mimics the checkpoint layer's transient-error
// classification without importing it (retry must stay a leaf package).
type markedTransient struct{ msg string }

func (e markedTransient) Error() string   { return e.msg }
func (e markedTransient) Transient() bool { return true }

func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	var slept []time.Duration
	r := New(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond},
		WithSeed(42), WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return markedTransient{"busy"}
		}
		return nil
	}, isTransient)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 0 || d >= 8*time.Millisecond {
			t.Fatalf("sleep %d = %v outside the jitter cap", i, d)
		}
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("disk on fire")
	r := New(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		WithSleep(func(time.Duration) { t.Fatal("slept before a permanent error") }))
	calls := 0
	err := r.Do(func() error { calls++; return perm }, isTransient)
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err %v after %d calls, want the permanent error after 1", err, calls)
	}
}

func TestDoExhaustsAttemptBudget(t *testing.T) {
	r := New(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		WithSleep(func(time.Duration) {}))
	calls := 0
	err := r.Do(func() error { calls++; return markedTransient{"busy"} }, isTransient)
	if err == nil || calls != 3 {
		t.Fatalf("err %v after %d calls, want the transient error after 3", err, calls)
	}
}

func TestDoNilPredicateNeverRetries(t *testing.T) {
	r := New(Default, WithSleep(func(time.Duration) { t.Fatal("slept with a nil predicate") }))
	calls := 0
	if err := r.Do(func() error { calls++; return markedTransient{"busy"} }, nil); err == nil || calls != 1 {
		t.Fatalf("err %v after %d calls, want failure after 1", err, calls)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	r := New(Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}, WithSeed(7))
	// The jittered delay is uniform in [0, min(base·2^r, max)); sample
	// each attempt many times and check the observed supremum respects
	// the exponential envelope.
	caps := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for attempt, want := range caps {
		var max time.Duration
		for i := 0; i < 200; i++ {
			d := r.Backoff(attempt)
			if d < 0 || d >= want {
				t.Fatalf("Backoff(%d) = %v outside [0, %v)", attempt, d, want)
			}
			if d > max {
				max = d
			}
		}
		if max < want/4 {
			t.Fatalf("Backoff(%d) supremum %v implausibly small for cap %v", attempt, max, want)
		}
	}
}

func TestSeededScheduleIsReproducible(t *testing.T) {
	a := New(Default, WithSeed(99))
	b := New(Default, WithSeed(99))
	for i := 0; i < 8; i++ {
		if da, db := a.Backoff(i), b.Backoff(i); da != db {
			t.Fatalf("attempt %d: %v vs %v under the same seed", i, da, db)
		}
	}
}

func TestAttemptsNormalization(t *testing.T) {
	if got := New(Policy{MaxAttempts: 0}).Attempts(); got != 1 {
		t.Fatalf("Attempts() = %d for MaxAttempts 0, want 1", got)
	}
	if got := New(Policy{MaxAttempts: -3}).Attempts(); got != 1 {
		t.Fatalf("Attempts() = %d for negative MaxAttempts, want 1", got)
	}
}
