package core

import "sort"

// Batched queries. The read-path counterpart of batch.go: a summary that
// implements QuantileBatcher answers many quantile (or rank) queries in
// one pass over its state — the φ list is sorted once, then a single
// sweep over the summary's sorted tuples / compactor items / postorder
// nodes answers every fraction, instead of one full walk per φ. The
// results are byte-identical to the per-φ methods; only the traversal is
// shared (see DESIGN.md "Query path").

// QuantileBatcher is an optional interface a Summary may implement to
// answer many queries in one pass over its state; QuantileBatch and
// RankBatch use it when available. Implementations must return exactly
// one element per input, accept inputs in any order (including
// duplicates), and produce results identical to calling the per-item
// method on each input.
type QuantileBatcher interface {
	// QuantileBatch returns one estimated quantile per fraction.
	QuantileBatch(phis []float64) []uint64
	// RankBatch returns one estimated rank per value.
	RankBatch(xs []uint64) []int64
}

// QuantileBatch extracts one quantile per fraction in phis, using the
// summary's single-pass batch path when it provides one.
func QuantileBatch(s Summary, phis []float64) []uint64 {
	if b, ok := s.(QuantileBatcher); ok {
		return b.QuantileBatch(phis)
	}
	out := make([]uint64, len(phis))
	for i, phi := range phis {
		out[i] = s.Quantile(phi)
	}
	return out
}

// RankBatch estimates one rank per value in xs, using the summary's
// single-pass batch path when it provides one.
func RankBatch(s Summary, xs []uint64) []int64 {
	if b, ok := s.(QuantileBatcher); ok {
		return b.RankBatch(xs)
	}
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = s.Rank(x)
	}
	return out
}

// sortedXOrder returns the indices of xs in ascending value order.
func sortedXOrder(xs []uint64) []int {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	return order
}

// WeightedRanks answers a batch of rank queries over a value-sorted
// sample set in a single cumulative scan, returning for each x the total
// weight of samples strictly smaller than x (identical to calling
// WeightedRank per value).
func WeightedRanks(sorted []WeightedValue, xs []uint64) []int64 {
	order := sortedXOrder(xs)
	out := make([]int64, len(xs))
	var cum int64
	pos := 0
	for _, idx := range order {
		x := xs[idx]
		for pos < len(sorted) && sorted[pos].V < x {
			cum += sorted[pos].W
			pos++
		}
		out[idx] = cum
	}
	return out
}

// QuerySnapshot is a summary frozen into flat sorted arrays so that
// every subsequent query is a binary search: O(log s), zero allocation,
// and safe to share between goroutines (the arrays are immutable once
// built). Two step functions are materialized:
//
//   - Quantile side: the answer to Quantile(phi) is QVals[i] for the
//     smallest i with QKeys[i] > TargetRank(phi, N), or the last entry
//     when no key exceeds the target. QKeys is non-decreasing.
//   - Rank side: the answer to Rank(x) is RRanks[i] for the largest i
//     with RVals[i] < x (RStrict) or RVals[i] <= x (!RStrict), and 0
//     when no entry qualifies. RVals is non-decreasing.
//
// Families whose query rules fit this shape exactly (the GK tuple
// families via a running-max key transform, QDigest via its postorder
// scan, and the sample-based families via cumulative weights) implement
// Snapshotter; their snapshots return byte-identical answers to the
// live summary. See DESIGN.md "Query snapshots" for the per-family
// flattening argument.
type QuerySnapshot struct {
	N       int64 // quantile target base: count, or total sample weight
	QVals   []uint64
	QKeys   []int64
	RVals   []uint64
	RRanks  []int64
	RStrict bool // rank rule compares RVals[i] < x instead of <= x
}

// Snapshotter is implemented by summaries whose query behavior can be
// flattened exactly into a QuerySnapshot. AppendQuerySnapshot overwrites
// qs with the summary's current state, reusing slice capacity. Callers
// that cache snapshots own the invalidation protocol (see
// internal/snapshot).
type Snapshotter interface {
	AppendQuerySnapshot(qs *QuerySnapshot)
}

// BuildQuerySnapshot materializes a fresh snapshot of s.
func BuildQuerySnapshot(s Snapshotter) *QuerySnapshot {
	qs := new(QuerySnapshot)
	s.AppendQuerySnapshot(qs)
	return qs
}

// Reset truncates the snapshot for rebuilding, keeping capacity.
func (qs *QuerySnapshot) Reset() {
	qs.N = 0
	qs.QVals = qs.QVals[:0]
	qs.QKeys = qs.QKeys[:0]
	qs.RVals = qs.RVals[:0]
	qs.RRanks = qs.RRanks[:0]
	qs.RStrict = false
}

// Quantile answers a quantile query from the snapshot.
func (qs *QuerySnapshot) Quantile(phi float64) uint64 {
	CheckPhi(phi)
	if qs.N <= 0 || len(qs.QVals) == 0 {
		panic(ErrEmpty)
	}
	return qs.QVals[qs.quantileIndex(TargetRank(phi, qs.N))]
}

// quantileIndex finds the smallest i with QKeys[i] > target, clamped to
// the last entry. The branch-free search keeps the hot query path
// closure-, allocation- and mispredict-free.
func (qs *QuerySnapshot) quantileIndex(target int64) int {
	lo := SearchGt(qs.QKeys, target)
	if lo >= len(qs.QVals) {
		lo = len(qs.QVals) - 1
	}
	return lo
}

// Rank answers a rank query from the snapshot.
func (qs *QuerySnapshot) Rank(x uint64) int64 {
	// Find the first entry that fails the comparison, then step back.
	// The strictness branch is hoisted out of the probe loop.
	var lo int
	if qs.RStrict {
		lo = SearchGe(qs.RVals, x)
	} else {
		lo = SearchGt(qs.RVals, x)
	}
	if lo == 0 {
		return 0
	}
	return qs.RRanks[lo-1]
}

// QuantileBatch answers one quantile per fraction by binary search.
func (qs *QuerySnapshot) QuantileBatch(phis []float64) []uint64 {
	out := make([]uint64, len(phis))
	qs.AppendQuantileBatch(out[:0], phis)
	return out
}

// AppendQuantileBatch appends one quantile per fraction to dst; callers
// on the zero-allocation path pass a reused buffer.
func (qs *QuerySnapshot) AppendQuantileBatch(dst []uint64, phis []float64) []uint64 {
	if qs.N <= 0 || len(qs.QVals) == 0 {
		panic(ErrEmpty)
	}
	for _, phi := range phis {
		CheckPhi(phi)
		dst = append(dst, qs.QVals[qs.quantileIndex(TargetRank(phi, qs.N))])
	}
	return dst
}

// RankBatch answers one rank per value by binary search.
func (qs *QuerySnapshot) RankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = qs.Rank(x)
	}
	return out
}

// AppendWeightedSnapshot flattens a value-sorted sample set into qs:
// the quantile and rank sides share the cumulative-weight arrays, and N
// is the total sample weight (the quantile target base the sampling
// families use). Answers are byte-identical to WeightedQuantile[s] and
// WeightedRank[s] over the same samples.
func AppendWeightedSnapshot(qs *QuerySnapshot, sorted []WeightedValue) {
	qs.Reset()
	var cum int64
	for _, it := range sorted {
		cum += it.W
		qs.QVals = append(qs.QVals, it.V)
		qs.QKeys = append(qs.QKeys, cum)
		// rank(x) = total weight of samples < x: the same pairs under
		// the strict comparison.
		qs.RVals = append(qs.RVals, it.V)
		qs.RRanks = append(qs.RRanks, cum)
	}
	qs.N = cum
	qs.RStrict = true
}
