// Package core defines the shared vocabulary of the library: the summary
// interfaces implemented by every quantile algorithm, the space-accounting
// conventions used throughout the experimental harness, and small helpers
// for extracting batches of quantiles.
//
// The conventions follow the paper "Quantiles over data streams: an
// experimental study" (SIGMOD 2013; extended in The VLDB Journal 25(4)):
//
//   - The rank r(x) of an element x in a multiset S is the number of
//     elements of S strictly smaller than x.
//   - The φ-quantile is the element of rank ⌊φn⌋; an ε-approximate
//     φ-quantile is any element whose rank lies in [(φ−ε)n, (φ+ε)n].
//   - Space is accounted in 4-byte words: every stored stream element,
//     counter, or pointer costs one word (paper §4.1.2).
package core

import (
	"errors"
	"fmt"
	"math"
)

// WordBytes is the cost, in bytes, of one stored element, counter, or
// pointer under the paper's space-accounting convention.
const WordBytes = 4

// ErrEmpty is returned or panicked on by operations that need at least one
// observed element (for example quantile extraction from an empty summary).
var ErrEmpty = errors.New("core: summary is empty")

// Summary is the query side shared by every quantile summary in this
// library, in both the cash-register and the turnstile model.
type Summary interface {
	// Count reports n, the number of elements currently summarized.
	// In the turnstile model deletions decrement it.
	Count() int64

	// Rank returns the estimated rank of x: the estimated number of
	// summarized elements strictly smaller than x. Estimates may be
	// negative for unbiased sketches; callers should clamp if needed.
	Rank(x uint64) int64

	// Quantile returns an estimated φ-quantile for 0 < phi < 1.
	// It panics if the summary is empty or phi is outside (0, 1).
	Quantile(phi float64) uint64

	// SpaceBytes reports the current size of the summary under the
	// 4-bytes-per-word accounting convention, including auxiliary
	// structures (buffers, heaps, index pointers, hash seeds).
	SpaceBytes() int64
}

// CashRegister is a summary over an insertion-only stream.
type CashRegister interface {
	Summary

	// Update observes one stream element.
	Update(x uint64)
}

// Turnstile is a summary over a stream of insertions and deletions.
// A deletion must not delete an element that is not present (the strict
// turnstile model); violating this voids the accuracy guarantees.
type Turnstile interface {
	Summary

	// Insert adds one occurrence of x.
	Insert(x uint64)
	// Delete removes one occurrence of x.
	Delete(x uint64)
}

// CheckPhi validates a quantile fraction, panicking with a descriptive
// message when phi lies outside (0, 1). Algorithms call it at the top of
// their Quantile methods so the failure mode is uniform across the library.
func CheckPhi(phi float64) {
	if math.IsNaN(phi) || phi <= 0 || phi >= 1 {
		panic(fmt.Sprintf("core: quantile fraction %v outside (0, 1)", phi))
	}
}

// CheckEps validates an error parameter, panicking with a descriptive
// message when eps lies outside (0, 1).
func CheckEps(eps float64) {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: invalid error parameter %v", eps))
	}
}

// TargetRank converts a quantile fraction into the rank ⌊φn⌋ targeted by
// the paper's definition, clamped to the feasible range [0, n−1].
func TargetRank(phi float64, n int64) int64 {
	r := int64(phi * float64(n))
	if r >= n {
		r = n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// Quantiles extracts one quantile per fraction in phis, using the
// summary's batch path when it provides one. It is an alias for
// QuantileBatch kept for the harness's vocabulary.
func Quantiles(s Summary, phis []float64) []uint64 {
	return QuantileBatch(s, phis)
}

// EvenPhis returns the 1/ε−1 evenly spaced fractions ε, 2ε, …, 1−ε used
// throughout the paper's evaluation. The fractions are clamped strictly
// inside (0, 1).
func EvenPhis(eps float64) []float64 {
	CheckEps(eps)
	k := int(math.Round(1/eps)) - 1
	if k < 1 {
		k = 1
	}
	phis := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		phi := float64(i) * eps
		if phi >= 1 {
			break
		}
		phis = append(phis, phi)
	}
	return phis
}

// ClampRank restricts an estimated rank to the feasible interval [0, n].
func ClampRank(r, n int64) int64 {
	if r < 0 {
		return 0
	}
	if r > n {
		return n
	}
	return r
}
