package core

import (
	"testing"
	"testing/quick"
)

func sampleSet() []WeightedValue {
	return []WeightedValue{
		{V: 10, W: 5}, {V: 20, W: 5}, {V: 30, W: 10}, {V: 40, W: 5}, {V: 50, W: 5},
	}
}

func TestWeightedRank(t *testing.T) {
	s := sampleSet()
	cases := []struct {
		x    uint64
		want int64
	}{
		{5, 0}, {10, 0}, {11, 5}, {20, 5}, {30, 10}, {35, 20}, {50, 25}, {99, 30},
	}
	for _, c := range cases {
		if got := WeightedRank(s, c.x); got != c.want {
			t.Errorf("WeightedRank(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestWeightedQuantile(t *testing.T) {
	s := sampleSet() // total weight 30
	cases := []struct {
		phi  float64
		want uint64
	}{
		{0.01, 10}, {0.17, 20}, {0.5, 30}, {0.67, 40}, {0.99, 50},
	}
	for _, c := range cases {
		if got := WeightedQuantile(s, c.phi); got != c.want {
			t.Errorf("WeightedQuantile(%v) = %d, want %d", c.phi, got, c.want)
		}
	}
}

func TestWeightedQuantilesMatchSingle(t *testing.T) {
	f := func(rawW []uint8, phiBits []uint16) bool {
		if len(rawW) == 0 || len(phiBits) == 0 {
			return true
		}
		var items []WeightedValue
		for i, w := range rawW {
			items = append(items, WeightedValue{V: uint64(i * 3), W: int64(w%7 + 1)})
		}
		SortWeighted(items)
		var phis []float64
		for _, p := range phiBits {
			phis = append(phis, float64(p%999+1)/1000)
		}
		batch := WeightedQuantiles(items, phis)
		for i, phi := range phis {
			if batch[i] != WeightedQuantile(items, phi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeightedQuantile on empty set did not panic")
		}
	}()
	WeightedQuantile(nil, 0.5)
}

func TestSortWeighted(t *testing.T) {
	items := []WeightedValue{{V: 3, W: 1}, {V: 1, W: 2}, {V: 2, W: 3}}
	SortWeighted(items)
	if items[0].V != 1 || items[1].V != 2 || items[2].V != 3 {
		t.Errorf("SortWeighted wrong order: %v", items)
	}
}
