package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEvenPhisCount(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{0.5, 1},
		{0.25, 3},
		{0.1, 9},
		{0.01, 99},
		{0.001, 999},
	}
	for _, c := range cases {
		got := EvenPhis(c.eps)
		if len(got) != c.want {
			t.Errorf("EvenPhis(%v): got %d fractions, want %d", c.eps, len(got), c.want)
		}
	}
}

func TestEvenPhisRangeAndOrder(t *testing.T) {
	phis := EvenPhis(0.01)
	if !sort.Float64sAreSorted(phis) {
		t.Fatal("EvenPhis not sorted")
	}
	for _, phi := range phis {
		if phi <= 0 || phi >= 1 {
			t.Fatalf("fraction %v outside (0,1)", phi)
		}
	}
	if math.Abs(phis[0]-0.01) > 1e-12 {
		t.Errorf("first fraction = %v, want 0.01", phis[0])
	}
	if math.Abs(phis[len(phis)-1]-0.99) > 1e-12 {
		t.Errorf("last fraction = %v, want 0.99", phis[len(phis)-1])
	}
}

func TestEvenPhisInvalid(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EvenPhis(%v) did not panic", eps)
				}
			}()
			EvenPhis(eps)
		}()
	}
}

func TestCheckPhiPanics(t *testing.T) {
	for _, phi := range []float64{0, 1, -0.5, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckPhi(%v) did not panic", phi)
				}
			}()
			CheckPhi(phi)
		}()
	}
	// Valid values must not panic.
	for _, phi := range []float64{0.001, 0.5, 0.999} {
		CheckPhi(phi)
	}
}

func TestTargetRank(t *testing.T) {
	cases := []struct {
		phi  float64
		n    int64
		want int64
	}{
		{0.5, 100, 50},
		{0.5, 101, 50},
		{0.999, 10, 9},
		{0.001, 10, 0},
		{0.25, 8, 2},
	}
	for _, c := range cases {
		if got := TargetRank(c.phi, c.n); got != c.want {
			t.Errorf("TargetRank(%v, %d) = %d, want %d", c.phi, c.n, got, c.want)
		}
	}
}

func TestTargetRankAlwaysFeasible(t *testing.T) {
	f := func(phiBits uint16, n uint16) bool {
		phi := float64(phiBits%999+1) / 1000
		nn := int64(n%1000 + 1)
		r := TargetRank(phi, nn)
		return r >= 0 && r < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampRank(t *testing.T) {
	if got := ClampRank(-5, 10); got != 0 {
		t.Errorf("ClampRank(-5,10) = %d", got)
	}
	if got := ClampRank(15, 10); got != 10 {
		t.Errorf("ClampRank(15,10) = %d", got)
	}
	if got := ClampRank(7, 10); got != 7 {
		t.Errorf("ClampRank(7,10) = %d", got)
	}
}

// fakeSummary lets us exercise the Quantiles helper.
type fakeSummary struct{ n int64 }

func (f fakeSummary) Count() int64                { return f.n }
func (f fakeSummary) Rank(x uint64) int64         { return int64(x) }
func (f fakeSummary) Quantile(phi float64) uint64 { return uint64(phi * 1000) }
func (f fakeSummary) SpaceBytes() int64           { return 0 }

func TestQuantilesHelper(t *testing.T) {
	s := fakeSummary{n: 1000}
	got := Quantiles(s, []float64{0.1, 0.5, 0.9})
	want := []uint64{100, 500, 900}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
