package core

// Batched ingestion. The paper's own headline engineering result is that
// GKArray beats GKAdaptive purely by amortizing per-item tree searches
// into buffered sort+merge passes; these interfaces extend that idea
// library-wide. A summary that implements the batch interface processes
// a whole slice per call — hoisting bounds checks, hash coefficient
// loads, level-loop bookkeeping and lock acquisitions out of the
// per-element loop — while remaining semantically equivalent to the
// element-at-a-time methods (byte-identical state for the linear and
// buffer-copy paths, identical ε guarantees where compaction order
// legitimately differs; see DESIGN.md "Batched ingestion").

// BatchCashRegister is a CashRegister with a native batched update path.
type BatchCashRegister interface {
	CashRegister

	// UpdateBatch observes the elements of xs in order. It is
	// semantically equivalent to calling Update on each element.
	// The implementation must not retain xs.
	UpdateBatch(xs []uint64)
}

// BatchTurnstile is a Turnstile with native batched update paths.
type BatchTurnstile interface {
	Turnstile

	// InsertBatch adds one occurrence of every element of xs.
	InsertBatch(xs []uint64)
	// DeleteBatch removes one occurrence of every element of xs.
	DeleteBatch(xs []uint64)
	// AddBatch applies the signed weight delta to every element of xs:
	// the weighted batch primitive (delta +1 is InsertBatch, −1 is
	// DeleteBatch). The implementation must not retain xs.
	AddBatch(xs []uint64, delta int64)
}

// Mergeable is implemented by summaries that can fold another summary
// of the same concrete type and configuration into themselves — the
// mergeable-summary sense of Agarwal et al. MergeSummary must leave
// other semantically unchanged (flushing other's internal buffers, a
// transparent operation its own queries also perform, is allowed).
// The sharded writer uses it at query time; summaries without it are
// combined by additive rank estimation instead.
type Mergeable interface {
	// MergeSummary folds other into the receiver and returns an error
	// when other has a different concrete type or configuration.
	MergeSummary(other Summary) error
}

// Retargetable is implemented by mergeable summaries that can absorb a
// summary built with a DIFFERENT error budget — the rebuild-through-
// merge primitive behind online re-ε migration. RetargetMerge widens
// the receiver's eps to the maximum of the two (error never silently
// shrinks: a coarser input poisons the fold to its own budget, exactly
// the max(eps1, eps2) rule MERGE already obeys for equal budgets) and
// then folds other in. Like MergeSummary it must leave other
// semantically unchanged.
type Retargetable interface {
	// RetargetMerge folds other into the receiver, adopting
	// max(receiver eps, other eps) as the merged error budget. It
	// returns an error when other has an incompatible concrete type.
	RetargetMerge(other Summary) error
}

// UpdateBatch feeds xs to s through its native batch path when it has
// one, falling back to the per-element loop.
func UpdateBatch(s CashRegister, xs []uint64) {
	if b, ok := s.(BatchCashRegister); ok {
		b.UpdateBatch(xs)
		return
	}
	for _, x := range xs {
		s.Update(x)
	}
}

// InsertBatch inserts xs into s through its native batch path when it
// has one, falling back to the per-element loop.
func InsertBatch(s Turnstile, xs []uint64) {
	if b, ok := s.(BatchTurnstile); ok {
		b.InsertBatch(xs)
		return
	}
	for _, x := range xs {
		s.Insert(x)
	}
}

// DeleteBatch deletes xs from s through its native batch path when it
// has one, falling back to the per-element loop.
func DeleteBatch(s Turnstile, xs []uint64) {
	if b, ok := s.(BatchTurnstile); ok {
		b.DeleteBatch(xs)
		return
	}
	for _, x := range xs {
		s.Delete(x)
	}
}
