package core

import "sort"

// WeightedValue is one retained sample together with the number of stream
// elements it represents. The sample-based summaries (Random, MRL99)
// answer queries from a collection of these.
type WeightedValue struct {
	V uint64
	W int64
}

// SortWeighted orders items by value ascending.
func SortWeighted(items []WeightedValue) {
	sort.Slice(items, func(i, j int) bool { return items[i].V < items[j].V })
}

// WeightedRank estimates the rank of x over a value-sorted sample set:
// the total weight of samples strictly smaller than x.
func WeightedRank(sorted []WeightedValue, x uint64) int64 {
	var r int64
	for _, it := range sorted {
		if it.V >= x {
			break
		}
		r += it.W
	}
	return r
}

// sortedPhiOrder returns the indices of phis in ascending fraction order,
// validating each fraction.
func sortedPhiOrder(phis []float64) []int {
	order := make([]int, len(phis))
	for i := range order {
		CheckPhi(phis[i])
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return phis[order[a]] < phis[order[b]] })
	return order
}

// WeightedQuantiles answers a batch of fractions over a value-sorted
// sample set in a single cumulative scan.
func WeightedQuantiles(sorted []WeightedValue, phis []float64) []uint64 {
	if len(sorted) == 0 {
		panic(ErrEmpty)
	}
	var total int64
	for _, it := range sorted {
		total += it.W
	}
	order := sortedPhiOrder(phis)
	out := make([]uint64, len(phis))
	var cum int64
	pos := 0
	for _, idx := range order {
		target := int64(phis[idx] * float64(total))
		if target >= total {
			target = total - 1
		}
		for pos < len(sorted) && cum+sorted[pos].W <= target {
			cum += sorted[pos].W
			pos++
		}
		if pos >= len(sorted) {
			out[idx] = sorted[len(sorted)-1].V
		} else {
			out[idx] = sorted[pos].V
		}
	}
	return out
}

// WeightedQuantile reports the sample whose weighted position covers
// ⌊φ·W⌋ in a value-sorted sample set, W being the total weight. This is
// the element whose estimated rank is closest to φn up to half a sample
// weight, matching the extraction rule of the sampling algorithms.
func WeightedQuantile(sorted []WeightedValue, phi float64) uint64 {
	CheckPhi(phi)
	if len(sorted) == 0 {
		panic(ErrEmpty)
	}
	var total int64
	for _, it := range sorted {
		total += it.W
	}
	target := int64(phi * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for _, it := range sorted {
		cum += it.W
		if cum > target {
			return it.V
		}
	}
	return sorted[len(sorted)-1].V
}
