package core

import (
	"testing"
	"testing/quick"
)

func TestCodecRoundTripScalars(t *testing.T) {
	var e Encoder
	e.U64(0)
	e.U64(1 << 63)
	e.I64(-12345)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.Blob([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if d.U64() != 0 || d.U64() != 1<<63 {
		t.Error("u64 round trip failed")
	}
	if d.I64() != -12345 {
		t.Error("i64 round trip failed")
	}
	if d.F64() != 3.14159 {
		t.Error("f64 round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool round trip failed")
	}
	blob := d.Blob()
	if len(blob) != 3 || blob[0] != 1 || blob[2] != 3 {
		t.Errorf("blob round trip failed: %v", blob)
	}
	if d.Err() != nil {
		t.Errorf("unexpected error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes remaining", d.Remaining())
	}
}

func TestCodecSlices(t *testing.T) {
	var e Encoder
	e.U64s([]uint64{5, 0, 1 << 40})
	e.I64s([]int64{-1, 0, 1})
	e.U64s(nil)

	d := NewDecoder(e.Bytes())
	us := d.U64s()
	is := d.I64s()
	empty := d.U64s()
	if len(us) != 3 || us[2] != 1<<40 {
		t.Errorf("u64s: %v", us)
	}
	if len(is) != 3 || is[0] != -1 {
		t.Errorf("i64s: %v", is)
	}
	if empty != nil {
		t.Errorf("empty slice decoded as %v", empty)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.F64(1.5)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.F64()
		if d.Err() == nil {
			t.Fatalf("no error decoding truncated input of %d bytes", cut)
		}
	}
}

func TestDecoderErrorsSticky(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.U64()
	first := d.Err()
	if first == nil {
		t.Fatal("empty decode produced no error")
	}
	_ = d.I64()
	_ = d.Bool()
	if d.Err() != first {
		t.Error("error not sticky")
	}
}

func TestDecoderHugeLengthRejected(t *testing.T) {
	var e Encoder
	e.U64(1 << 40) // absurd length prefix
	d := NewDecoder(e.Bytes())
	_ = d.U64s()
	if d.Err() == nil {
		t.Error("huge length prefix accepted")
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(us []uint64, is []int64, fv float64, bv bool) bool {
		var e Encoder
		e.U64s(us)
		e.I64s(is)
		e.F64(fv)
		e.Bool(bv)
		d := NewDecoder(e.Bytes())
		gotU := d.U64s()
		gotI := d.I64s()
		gotF := d.F64()
		gotB := d.Bool()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		if len(gotU) != len(us) || len(gotI) != len(is) {
			return false
		}
		for i := range us {
			if gotU[i] != us[i] {
				return false
			}
		}
		for i := range is {
			if gotI[i] != is[i] {
				return false
			}
		}
		// NaN != NaN: compare bit patterns via another encode.
		if gotB != bv {
			return false
		}
		if gotF != fv && !(fv != fv && gotF != gotF) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
