package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrCorrupt is the shared sentinel wrapped by every decoding failure in
// the library: truncated input, hostile length prefixes, out-of-range
// parameters, inconsistent structure. Callers — most importantly the
// checkpoint recovery manager — test for it with errors.Is to distinguish
// "this encoding is bad" from environmental errors (I/O, permissions).
var ErrCorrupt = errors.New("corrupt encoding")

// Corruptf builds a decoding error wrapping ErrCorrupt. Every summary
// codec reports malformed input through it so corruption is uniformly
// detectable with errors.Is(err, core.ErrCorrupt).
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// Encoder builds the compact binary encodings used by the summaries'
// MarshalBinary implementations: varint-coded integers with
// length-prefixed slices. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// EncoderFrom returns an Encoder that appends onto dst, so a caller
// holding a pooled buffer (see EncodeBufPool) can marshal without a
// fresh allocation. The bytes produced are identical to a zero-value
// Encoder's — only the backing storage differs.
func EncoderFrom(dst []byte) Encoder { return Encoder{buf: dst} }

// AppendMarshaler is the append-flavored marshal contract the summary
// codecs implement alongside encoding.BinaryMarshaler: AppendBinary
// appends the same bytes MarshalBinary would return onto dst and
// returns the extended slice. It lets the checkpoint path reuse pooled
// buffers instead of allocating a payload per generation.
type AppendMarshaler interface {
	AppendBinary(dst []byte) ([]byte, error)
}

// EncodeBufPool recycles encode scratch buffers (as *[]byte) across
// marshal and frame-building calls: the checkpoint layer's frames and
// the sharded codec's per-shard payloads both draw from it, so
// steady-state checkpointing of an unchanged topology is
// allocation-flat. Every Get must pair with a Put in the same function
// (the SQ009 contract).
var EncodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zig-zag) varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends a float64 as its IEEE 754 bits.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a single byte flag.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// U64s appends a length-prefixed slice of unsigned varints.
func (e *Encoder) U64s(vs []uint64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// I64s appends a length-prefixed slice of signed varints.
func (e *Encoder) I64s(vs []int64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Blob appends a length-prefixed raw byte slice (e.g. a nested
// encoding).
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// UvarintLen returns the encoded size of v as an unsigned varint, so
// frame assemblers can preallocate exactly.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decoder reads an Encoder's output. Errors are sticky: after the first
// failure every read returns a zero value, and Err reports the cause —
// callers validate once at the end.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder wraps a buffer.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = Corruptf("core: truncated input reading %s", what)
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// I64 reads a signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// F64 reads a float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

// Bool reads a byte flag.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) == 0 {
		d.fail("bool")
		return false
	}
	raw := d.buf[0]
	d.buf = d.buf[1:]
	return raw != 0
}

// maxDecodeLen bounds length prefixes so corrupt input cannot trigger
// huge allocations.
const maxDecodeLen = 1 << 30

// Len reads a length prefix with sanity bounds.
func (d *Decoder) Len() int {
	n := d.U64()
	if n > maxDecodeLen {
		d.fail("length prefix")
		return 0
	}
	return int(n)
}

// U64s reads a length-prefixed slice. The allocation is bounded by the
// remaining input: every element costs at least one encoded byte, so a
// hostile length prefix larger than the buffer is rejected before any
// memory is reserved for it.
func (d *Decoder) U64s() []uint64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.fail("u64 slice length")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// I64s reads a length-prefixed slice, with the same input-length bound
// as U64s.
func (d *Decoder) I64s() []int64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.fail("i64 slice length")
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Blob reads a length-prefixed raw byte slice.
func (d *Decoder) Blob() []byte {
	n := d.Len()
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.fail("blob")
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// Remaining reports unread bytes; round-trip tests use it to assert the
// encoding was consumed exactly.
func (d *Decoder) Remaining() int { return len(d.buf) }
