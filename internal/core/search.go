package core

import "cmp"

// Branch-free binary search over non-decreasing slices. The classic
// lo/hi search takes an unpredictable branch per probe — on quantile
// workloads the probe pattern is essentially random, so every probe is
// a coin-flip mispredict. The base/width halving form below keeps the
// loop body straight-line: the only conditional is a guarded add the
// compiler lowers to a conditional move, so the pipeline never
// speculates on a key comparison.
//
// Loop invariant: the first index i with keys[i] beyond the probe
// (> x for SearchGt, ≥ x for SearchGe) lies in [base, base+n]. Each
// step inspects the last key of the window's first half: when it is
// still on the near side, the whole half is (the slice is sorted) and
// base advances past it; either way the window shrinks to its second
// half — of size n−⌊n/2⌋ = ⌈n/2⌉, a superset of the undecided region —
// so ⌈log₂ n⌉+1 probes decide the answer exactly.

// SearchGt returns the smallest index i with keys[i] > x, or len(keys)
// when no entry is greater. keys must be non-decreasing. Equivalent to
// sort.Search(len(keys), func(i int) bool { return keys[i] > x }).
func SearchGt[T cmp.Ordered](keys []T, x T) int {
	base, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[base+half-1] <= x {
			base += half
		}
		n -= half
	}
	if n == 1 && keys[base] <= x {
		base++
	}
	return base
}

// SearchGe returns the smallest index i with keys[i] >= x, or len(keys)
// when no entry qualifies. keys must be non-decreasing. Equivalent to
// sort.Search(len(keys), func(i int) bool { return keys[i] >= x }).
func SearchGe[T cmp.Ordered](keys []T, x T) int {
	base, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[base+half-1] < x {
			base += half
		}
		n -= half
	}
	if n == 1 && keys[base] < x {
		base++
	}
	return base
}
