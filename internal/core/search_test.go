package core

import (
	"sort"
	"testing"
)

// refGt / refGe are the sort.Search oracles the branch-free loops must
// match index-for-index.
func refGt(keys []int64, x int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > x })
}

func refGe(keys []int64, x int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= x })
}

// adversarialSizes covers the shapes where a halving loop's window
// arithmetic goes wrong: empty, single, exact powers of two (every
// window splits evenly), and their off-by-one neighbours (odd windows
// on every level).
func adversarialSizes() []int {
	sizes := []int{0, 1, 2, 3}
	for k := 2; k <= 10; k++ {
		n := 1 << k
		sizes = append(sizes, n-1, n, n+1)
	}
	return sizes
}

// buildKeys materializes one of several adversarial key layouts of
// length n over a small value range so duplicates are common.
func buildKeys(layout string, n int) []int64 {
	keys := make([]int64, n)
	switch layout {
	case "all-equal":
		for i := range keys {
			keys[i] = 42
		}
	case "distinct":
		for i := range keys {
			keys[i] = int64(2 * i) // gaps, so probes fall between keys
		}
	case "plateaus":
		for i := range keys {
			keys[i] = int64(i / 3)
		}
	case "extremes":
		for i := range keys {
			keys[i] = int64(i)
		}
		if n > 0 {
			keys[0] = -1 << 62
			keys[n-1] = 1 << 62
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	}
	return keys
}

func probesFor(keys []int64) []int64 {
	probes := []int64{-1 << 62, -1, 0, 1, 41, 42, 43, 1 << 62}
	for _, k := range keys {
		probes = append(probes, k-1, k, k+1)
	}
	return probes
}

func TestSearchMatchesSortSearch(t *testing.T) {
	layouts := []string{"all-equal", "distinct", "plateaus", "extremes"}
	for _, layout := range layouts {
		for _, n := range adversarialSizes() {
			keys := buildKeys(layout, n)
			for _, x := range probesFor(keys) {
				if got, want := SearchGt(keys, x), refGt(keys, x); got != want {
					t.Fatalf("SearchGt(%s, n=%d, x=%d) = %d, sort.Search %d", layout, n, x, got, want)
				}
				if got, want := SearchGe(keys, x), refGe(keys, x); got != want {
					t.Fatalf("SearchGe(%s, n=%d, x=%d) = %d, sort.Search %d", layout, n, x, got, want)
				}
			}
		}
	}
}

// TestSearchUint64 pins the unsigned instantiation (the Rank side
// searches RVals []uint64): full-range values, including ^uint64(0).
func TestSearchUint64(t *testing.T) {
	keys := []uint64{0, 0, 5, 5, 5, 1 << 40, ^uint64(0), ^uint64(0)}
	for _, x := range []uint64{0, 1, 4, 5, 6, 1<<40 - 1, 1 << 40, ^uint64(0) - 1, ^uint64(0)} {
		wantGt := sort.Search(len(keys), func(i int) bool { return keys[i] > x })
		wantGe := sort.Search(len(keys), func(i int) bool { return keys[i] >= x })
		if got := SearchGt(keys, x); got != wantGt {
			t.Fatalf("SearchGt(x=%d) = %d, want %d", x, got, wantGt)
		}
		if got := SearchGe(keys, x); got != wantGe {
			t.Fatalf("SearchGe(x=%d) = %d, want %d", x, got, wantGe)
		}
	}
}

// TestSnapshotQueriesOnAdversarialShapes drives the search through the
// QuerySnapshot entry points on the degenerate shapes a snapshot can
// legally take: single-key, all-equal keys, and sentinel-terminated key
// runs like the GK flattening produces.
func TestSnapshotQueriesOnAdversarialShapes(t *testing.T) {
	for _, n := range adversarialSizes() {
		if n == 0 {
			continue // empty snapshots panic ErrEmpty by contract
		}
		qs := &QuerySnapshot{N: int64(n)}
		for i := 0; i < n; i++ {
			qs.QVals = append(qs.QVals, uint64(10*i))
			qs.QKeys = append(qs.QKeys, int64(i+1))
			qs.RVals = append(qs.RVals, uint64(10*i))
			qs.RRanks = append(qs.RRanks, int64(i+1))
		}
		for _, phi := range []float64{0.001, 0.25, 0.5, 0.75, 0.999} {
			target := TargetRank(phi, qs.N)
			want := refGt(qs.QKeys, target)
			if want >= len(qs.QVals) {
				want = len(qs.QVals) - 1
			}
			if got := qs.Quantile(phi); got != qs.QVals[want] {
				t.Fatalf("n=%d Quantile(%v) = %d, want %d", n, phi, got, qs.QVals[want])
			}
		}
		for x := uint64(0); x <= uint64(10*n); x += 5 {
			lo := sort.Search(len(qs.RVals), func(i int) bool { return qs.RVals[i] > x })
			var want int64
			if lo > 0 {
				want = qs.RRanks[lo-1]
			}
			if got := qs.Rank(x); got != want {
				t.Fatalf("n=%d Rank(%d) = %d, want %d", n, x, got, want)
			}
		}
	}

	// All-equal keys with a clamping tail: every target maps into the
	// plateau, and targets beyond every key clamp to the last value.
	qs := &QuerySnapshot{
		N:     100,
		QVals: []uint64{1, 2, 3},
		QKeys: []int64{7, 7, 7},
	}
	if got := qs.Quantile(0.001); got != 1 {
		t.Fatalf("plateau low quantile = %d, want 1", got)
	}
	if got := qs.Quantile(0.999); got != 3 {
		t.Fatalf("plateau clamped quantile = %d, want 3", got)
	}
}

// FuzzSearchEquivalence feeds arbitrary byte strings decoded as sorted
// key sets plus a probe, asserting both branch-free loops agree with
// sort.Search everywhere.
func FuzzSearchEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, int64(2))
	f.Add([]byte{}, int64(0))
	f.Add([]byte{0xff, 0xff, 0x00, 0x80}, int64(-1))
	f.Fuzz(func(t *testing.T, raw []byte, x int64) {
		keys := make([]int64, 0, len(raw))
		acc := int64(0)
		for _, b := range raw {
			acc += int64(b) - 100 // mixed signs, heavy duplicates
			keys = append(keys, acc)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		if got, want := SearchGt(keys, x), refGt(keys, x); got != want {
			t.Fatalf("SearchGt(len=%d, x=%d) = %d, sort.Search %d", len(keys), x, got, want)
		}
		if got, want := SearchGe(keys, x), refGe(keys, x); got != want {
			t.Fatalf("SearchGe(len=%d, x=%d) = %d, sort.Search %d", len(keys), x, got, want)
		}
	})
}
