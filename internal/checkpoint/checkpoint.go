// Package checkpoint is the durability layer of the library: it frames
// the summaries' binary encodings into atomic, generation-numbered
// checkpoint files and recovers the newest intact one after a crash.
//
// The cash-register model forbids re-reading the stream, so a live
// summary IS the data: losing it to a process crash means losing the
// stream. A checkpoint file carries a versioned header and CRC32C
// integrity codes around an opaque payload (a summary's MarshalBinary
// output), and is published with the classic write-to-temp → fsync →
// rename → fsync-dir protocol so a crash at any instant leaves either
// the previous generation or the new one, never a torn hybrid under the
// live name. Recovery scans generations newest-first and degrades
// gracefully: any file failing magic, version, CRC, decode, or deep
// invariant checks is skipped (with the reason recorded in a
// RecoveryReport) and the next older generation is tried.
//
// Writes retry transient failures — errors whose chain implements
// Transient() bool, as the faultio shim's injected EIO does — with
// capped exponential backoff and full jitter, the standard remedy for
// contended or briefly failing storage.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/retry"
)

// File format (little-endian):
//
//	offset  size  field
//	0       4     magic "SQCP"
//	4       1     format version (currently 1)
//	5       1     label length L (0–255)
//	6       8     generation number
//	14      8     payload length N
//	22      L     label (e.g. the algorithm name; opaque to this layer)
//	22+L    4     CRC32C over bytes [0, 22+L)
//	26+L    N     payload (a summary's MarshalBinary output)
//	26+L+N  4     CRC32C over the payload
const (
	magic         = "SQCP"
	formatVersion = 1
	fixedHeader   = 22 // bytes before the label
	crcLen        = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

// fileName returns the published name of a generation.
func fileName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", filePrefix, gen, fileSuffix)
}

// parseFileName extracts the generation from a published checkpoint
// name; ok is false for temp files and foreign files.
func parseFileName(name string) (gen uint64, ok bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Frame buffers are recycled through core.EncodeBufPool across Save
// calls: periodic checkpointing under the Safe wrappers would otherwise
// allocate a payload-plus-header slice every generation. The sharded
// codec draws its per-shard marshal scratch from the same pool, so one
// warm set of buffers serves the whole save path.

// appendFrame builds the on-disk frame around payload into dst[:0]
// (growing it as needed) and returns the frame.
func appendFrame(dst []byte, gen uint64, label string, payload []byte) ([]byte, error) {
	if len(label) > 255 {
		return nil, fmt.Errorf("checkpoint: label %q longer than 255 bytes", label)
	}
	need := fixedHeader + len(label) + crcLen + len(payload) + crcLen
	buf := dst[:0]
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = append(buf, magic...)
	buf = append(buf, formatVersion, byte(len(label)))
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, label...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// parseFrame validates a frame read back from disk and returns its
// contents. All failures wrap core.ErrCorrupt: a bad frame is corrupt
// data, never an environmental error.
func parseFrame(data []byte) (gen uint64, label string, payload []byte, err error) {
	if len(data) < fixedHeader+2*crcLen {
		return 0, "", nil, core.Corruptf("checkpoint: file of %d bytes shorter than any valid frame", len(data))
	}
	if string(data[:4]) != magic {
		return 0, "", nil, core.Corruptf("checkpoint: bad magic %q", data[:4])
	}
	if data[4] != formatVersion {
		return 0, "", nil, core.Corruptf("checkpoint: unsupported format version %d", data[4])
	}
	labelLen := int(data[5])
	gen = binary.LittleEndian.Uint64(data[6:14])
	payloadLen := binary.LittleEndian.Uint64(data[14:22])
	headerEnd := fixedHeader + labelLen
	// The payload length is validated against the actual file size
	// before it is used for slicing, so a hostile length cannot cause
	// an out-of-range access or an oversized allocation.
	want := uint64(headerEnd + crcLen + crcLen)
	if uint64(len(data)) < want || payloadLen != uint64(len(data))-want {
		return 0, "", nil, core.Corruptf("checkpoint: frame of %d bytes inconsistent with label length %d and payload length %d",
			len(data), labelLen, payloadLen)
	}
	gotHeaderCRC := binary.LittleEndian.Uint32(data[headerEnd : headerEnd+crcLen])
	if c := crc32.Checksum(data[:headerEnd], castagnoli); c != gotHeaderCRC {
		return 0, "", nil, core.Corruptf("checkpoint: header CRC mismatch (stored %08x, computed %08x)", gotHeaderCRC, c)
	}
	label = string(data[fixedHeader:headerEnd])
	payload = data[headerEnd+crcLen : uint64(headerEnd+crcLen)+payloadLen]
	gotPayloadCRC := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if c := crc32.Checksum(payload, castagnoli); c != gotPayloadCRC {
		return 0, "", nil, core.Corruptf("checkpoint: payload CRC mismatch (stored %08x, computed %08x)", gotPayloadCRC, c)
	}
	return gen, label, payload, nil
}

// RetryPolicy caps the write-side retries on transient storage errors.
// It is the shared policy type of internal/retry, re-exported here so
// existing checkpoint callers keep compiling unchanged.
type RetryPolicy = retry.Policy

// DefaultRetry is the policy used unless WithRetry overrides it.
var DefaultRetry = retry.Default

// Checkpointer writes generation-numbered checkpoint files into one
// directory. It is not goroutine-safe: the summary wrappers serialize
// their checkpoint calls, matching the one-writer-per-directory model.
type Checkpointer struct {
	fs   FS
	dir  string
	next uint64 // generation the next Save publishes
	keep int    // generations retained after a successful Save

	// retryOpts accumulate until Open builds the Retrier — options may
	// arrive in any order, so construction is deferred past all of them.
	policy    RetryPolicy
	retryOpts []retry.Option
	retrier   *retry.Retrier
}

// Option customizes Open.
type Option func(*Checkpointer)

// WithFS substitutes the filesystem (production code uses OSFS; tests
// inject faultio shims).
func WithFS(fs FS) Option { return func(c *Checkpointer) { c.fs = fs } }

// WithKeep sets how many newest generations survive pruning after a
// successful Save. The default 3 balances recovery depth against disk;
// values below 1 are treated as 1.
func WithKeep(n int) Option {
	return func(c *Checkpointer) {
		if n < 1 {
			n = 1
		}
		c.keep = n
	}
}

// WithRetry overrides the transient-failure retry policy.
func WithRetry(p RetryPolicy) Option { return func(c *Checkpointer) { c.policy = p } }

// WithSleep substitutes the sleeping function used between retries;
// tests record the requested delays instead of actually waiting.
func WithSleep(sleep func(time.Duration)) Option {
	return func(c *Checkpointer) { c.retryOpts = append(c.retryOpts, retry.WithSleep(sleep)) }
}

// WithJitterSeed seeds the backoff jitter; the default seed is fine for
// production, tests pin it for reproducible schedules.
func WithJitterSeed(seed uint64) Option {
	return func(c *Checkpointer) { c.retryOpts = append(c.retryOpts, retry.WithSeed(seed)) }
}

// Open prepares dir (creating it if needed) for checkpointing and
// positions the generation counter after the newest existing file, so
// reopening after a crash never reuses a published generation number.
func Open(dir string, opts ...Option) (*Checkpointer, error) {
	c := &Checkpointer{
		fs:     OSFS{},
		dir:    dir,
		keep:   3,
		policy: DefaultRetry,
	}
	for _, o := range opts {
		o(c)
	}
	c.retrier = retry.New(c.policy, c.retryOpts...)
	if err := c.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	names, err := c.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, name := range names {
		if gen, ok := parseFileName(name); ok && gen >= c.next {
			c.next = gen + 1
		}
	}
	return c, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpointer) Dir() string { return c.dir }

// NextGeneration returns the generation number the next Save publishes.
func (c *Checkpointer) NextGeneration() uint64 { return c.next }

// Save durably publishes payload as the next generation and returns its
// generation number. Transient storage errors are retried under the
// policy; any returned error means nothing was published (the previous
// generation is still the recovery target). The label travels in the
// header, readable before the payload is decoded — callers use it to
// record which algorithm produced the payload.
func (c *Checkpointer) Save(label string, payload []byte) (uint64, error) {
	bufp := core.EncodeBufPool.Get().(*[]byte)
	defer func() {
		core.EncodeBufPool.Put(bufp)
	}()
	frame, err := appendFrame(*bufp, c.next, label, payload)
	if err != nil {
		return 0, err
	}
	*bufp = frame // keep the grown buffer for the next generation
	if err := c.retrier.Do(func() error { return c.writeGen(c.next, frame) }, IsTransient); err != nil {
		return 0, err
	}
	gen := c.next
	c.next++
	c.prune()
	return gen, nil
}

// writeGen runs one attempt of the atomic publish protocol.
func (c *Checkpointer) writeGen(gen uint64, frame []byte) (err error) {
	final := filepath.Join(c.dir, fileName(gen))
	tmp := final + tmpSuffix
	f, err := c.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			_ = c.fs.Remove(tmp) // best effort; recovery ignores temp files anyway
		}
	}()
	if _, werr := f.Write(frame); werr != nil {
		_ = f.Close()
		return fmt.Errorf("checkpoint: write: %w", werr)
	}
	if serr := f.Sync(); serr != nil {
		_ = f.Close()
		return fmt.Errorf("checkpoint: fsync: %w", serr)
	}
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("checkpoint: close: %w", cerr)
	}
	if rerr := c.fs.Rename(tmp, final); rerr != nil {
		return fmt.Errorf("checkpoint: rename: %w", rerr)
	}
	if derr := c.fs.SyncDir(c.dir); derr != nil {
		return fmt.Errorf("checkpoint: fsync dir: %w", derr)
	}
	return nil
}

// prune removes published generations older than the keep window, best
// effort: a failed removal costs disk, never correctness.
func (c *Checkpointer) prune() {
	names, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return
	}
	// c.next is one past the newest published generation.
	oldest := uint64(0)
	if uint64(c.keep) < c.next {
		oldest = c.next - uint64(c.keep)
	}
	for _, name := range names {
		if gen, ok := parseFileName(name); ok && gen < oldest {
			_ = c.fs.Remove(filepath.Join(c.dir, name))
		}
	}
}
