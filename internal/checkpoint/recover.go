package checkpoint

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrNoCheckpoint is returned by Recover when the directory holds no
// intact checkpoint: either it is empty (a fresh deployment) or every
// generation failed validation (the report says which and why).
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint found")

// Skipped records one rejected generation during recovery.
type Skipped struct {
	// File is the base name of the rejected file.
	File string
	// Generation is the number parsed from the file name.
	Generation uint64
	// Reason is the validation failure, as text: recovery keeps going,
	// so the error chain itself is not preserved.
	Reason string
}

// RecoveryReport describes what recovery found, loaded and rejected.
// It is diagnostic output: a non-empty Skipped list means data was lost
// to corruption or a crash and the operator should know.
type RecoveryReport struct {
	// Generation and File identify the loaded checkpoint; meaningful
	// only when Loaded is true.
	Generation uint64
	File       string
	// Label is the loaded frame's header label.
	Label string
	// Loaded reports whether any generation validated.
	Loaded bool
	// Skipped lists rejected generations, newest first — the order
	// they were tried in.
	Skipped []Skipped
	// Candidates carries per-candidate decode timing when the caller
	// supplied a CandidateObserver that measures it (this package never
	// reads the clock itself — the SQ001 contract); nil otherwise.
	Candidates []CandidateTiming
}

// CandidateTiming is one candidate's decode cost as measured by the
// caller's observer; see RecoverObserved.
type CandidateTiming struct {
	// File and Generation identify the candidate.
	File       string
	Generation uint64
	// Decode is the wall time the caller measured around the Validator
	// call (frame read and CRC verification are pipelined ahead of it).
	Decode time.Duration
	// Loaded reports whether this candidate became the recovery target.
	Loaded bool
}

// A CandidateObserver brackets each candidate validation during
// Recover: obs(file, gen) runs just before the Validator is invoked on
// that candidate's payload and the returned done just after it
// returns. Callers that want per-candidate decode timing in the report
// measure inside the observer and fill RecoveryReport.Candidates —
// timing stays caller-injected so this package never reads the clock.
type CandidateObserver func(file string, gen uint64) (done func())

// String renders the report for logs.
func (r *RecoveryReport) String() string {
	s := "checkpoint: no generation loaded"
	if r.Loaded {
		s = fmt.Sprintf("checkpoint: loaded generation %d from %s (label %q)", r.Generation, r.File, r.Label)
	}
	for _, sk := range r.Skipped {
		s += fmt.Sprintf("; skipped %s: %s", sk.File, sk.Reason)
	}
	return s
}

// Validator checks a candidate payload beyond its CRCs — typically by
// decoding it into a summary and running the summary's deep invariant
// checks. A non-nil error rejects the candidate and recovery moves on
// to the next older generation. A nil Validator accepts any payload
// whose frame is intact.
type Validator func(label string, payload []byte) error

// Recover scans dir newest-first and returns the payload of the first
// generation that passes every check: readable, well-formed header,
// magic, version, both CRCs, generation number matching the file name,
// and the caller's Validator. Rejected generations are recorded in the
// report with their reasons; an error is returned only when no
// generation survives (ErrNoCheckpoint wrapped with context).
func Recover(fs FS, dir string, validate Validator) ([]byte, *RecoveryReport, error) {
	return RecoverObserved(fs, dir, validate, nil)
}

// RecoverObserved is Recover with a per-candidate observer bracketing
// each Validator call (nil behaves exactly like Recover).
//
// Recovery is pipelined: a single prefetch goroutine reads the next
// candidate's frame and verifies both CRC32C codes while the calling
// goroutine runs the Validator — typically the expensive payload decode
// — on the current one, so I/O + checksumming overlap decoding instead
// of serializing with it. The prefetch goroutine is always joined
// before return, on success and error paths alike.
func RecoverObserved(fs FS, dir string, validate Validator, obs CandidateObserver) ([]byte, *RecoveryReport, error) {
	report := &RecoveryReport{}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, report, fmt.Errorf("checkpoint: %w", err)
	}
	type candidate struct {
		name string
		gen  uint64
	}
	var cands []candidate
	for _, name := range names {
		if gen, ok := parseFileName(name); ok {
			cands = append(cands, candidate{name, gen})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gen > cands[j].gen })

	// The prefetch stage: frames arrive read and CRC-verified over a
	// one-deep channel, newest first. On every path out the deferred
	// pair runs close(stop) first (defers are LIFO), unblocking a
	// prefetch parked mid-send, then wg.Wait joins the goroutine — no
	// leak on success, rejection-exhaustion or panic.
	type fetched struct {
		idx     int
		payload []byte
		label   string
		err     error
	}
	frames := make(chan fetched, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(stop)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(frames)
		for i, cand := range cands {
			payload, label, err := readGen(fs, filepath.Join(dir, cand.name), cand.gen)
			select {
			case frames <- fetched{i, payload, label, err}:
			case <-stop:
				return
			}
		}
	}()

	for f := range frames {
		cand := cands[f.idx]
		err := f.err
		if err == nil && validate != nil {
			done := func() {}
			if obs != nil {
				if d := obs(cand.name, cand.gen); d != nil {
					done = d
				}
			}
			err = validate(f.label, f.payload)
			done()
		}
		if err != nil {
			report.Skipped = append(report.Skipped, Skipped{
				File: cand.name, Generation: cand.gen, Reason: err.Error(),
			})
			continue
		}
		report.Loaded = true
		report.Generation = cand.gen
		report.File = cand.name
		report.Label = f.label
		return f.payload, report, nil
	}
	return nil, report, fmt.Errorf("%w in %s (%d file(s) rejected)", ErrNoCheckpoint, dir, len(report.Skipped))
}

// readGen reads and frame-validates one published generation.
func readGen(fs FS, path string, wantGen uint64) (payload []byte, label string, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, "", err
	}
	data, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, "", err
	}
	gen, label, payload, err := parseFrame(data)
	if err != nil {
		return nil, "", err
	}
	if gen != wantGen {
		return nil, "", fmt.Errorf("checkpoint: header generation %d does not match file name generation %d", gen, wantGen)
	}
	return payload, label, nil
}
