package checkpoint

import (
	"errors"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the checkpoint layer needs: small enough
// to fake deterministically (internal/faultio wraps it with injected
// torn writes, bit flips, short reads and transient errors), complete
// enough for the write-to-temp / fsync / rename durability protocol.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names in dir (base names, any order).
	ReadDir(dir string) ([]string, error)
	// SyncDir flushes directory metadata (the rename) to stable
	// storage. Implementations without directory handles may no-op.
	SyncDir(dir string) error
}

// File is one open checkpoint file.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// SyncDir implements FS: without the directory fsync a crash can lose
// the rename itself, resurrecting the previous generation.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// transienter is the marker interface for retryable errors; the faultio
// shim's injected "transient EIO" implements it.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is marked retryable: it (or an error
// it wraps) implements Transient() bool returning true. Permanent
// failures — corruption, missing directories — are never transient.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// readAll reads f to EOF tolerating arbitrarily short (but non-zero)
// reads, as injected by the short-read fault class. io.ReadAll already
// has exactly that contract; the indirection documents the dependency.
func readAll(f File) ([]byte, error) { return io.ReadAll(f) }
