package checkpoint_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/core"
	"streamquantiles/internal/faultio"
)

const dir = "/ckpt"

func openMem(t *testing.T, fs checkpoint.FS, opts ...checkpoint.Option) *checkpoint.Checkpointer {
	t.Helper()
	ck, err := checkpoint.Open(dir, append([]checkpoint.Option{checkpoint.WithFS(fs)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	payload := []byte("the summary state")
	gen, err := ck.Save("gkarray", payload)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("first generation = %d, want 0", gen)
	}
	got, report, err := checkpoint.Recover(fs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recovered %q, want %q", got, payload)
	}
	if !report.Loaded || report.Generation != 0 || report.Label != "gkarray" || len(report.Skipped) != 0 {
		t.Fatalf("report %+v", report)
	}
}

func TestGenerationsAdvanceAndSurviveReopen(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	for i := 0; i < 3; i++ {
		if _, err := ck.Save("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A restarted process must not reuse a published generation.
	ck2 := openMem(t, fs)
	if ck2.NextGeneration() != 3 {
		t.Fatalf("reopened next generation = %d, want 3", ck2.NextGeneration())
	}
	got, report, err := checkpoint.Recover(fs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Generation != 2 || !bytes.Equal(got, []byte{2}) {
		t.Fatalf("recovered generation %d payload %v", report.Generation, got)
	}
}

func TestPruneKeepsNewestGenerations(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs, checkpoint.WithKeep(2))
	for i := 0; i < 5; i++ {
		if _, err := ck.Save("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("kept %d files %v, want 2", len(names), names)
	}
}

func TestRecoverSkipsCorruptNewestGeneration(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	if _, err := ck.Save("x", []byte("good old state")); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save("x", []byte("doomed new state")); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir(dir)
	newest := names[len(names)-1]
	if err := fs.FlipBit(filepath.Join(dir, newest), 30, 0x10); err != nil {
		t.Fatal(err)
	}
	got, report, err := checkpoint.Recover(fs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good old state" {
		t.Fatalf("recovered %q", got)
	}
	if len(report.Skipped) != 1 || report.Skipped[0].File != newest {
		t.Fatalf("report %+v", report)
	}
	if !strings.Contains(report.Skipped[0].Reason, "CRC") {
		t.Fatalf("skip reason %q does not mention CRC", report.Skipped[0].Reason)
	}
}

func TestRecoverRejectsByValidator(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	if _, err := ck.Save("x", []byte("decodes fine")); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save("x", []byte("decodes badly")); err != nil {
		t.Fatal(err)
	}
	got, report, err := checkpoint.Recover(fs, dir, func(label string, payload []byte) error {
		if bytes.Contains(payload, []byte("badly")) {
			return core.Corruptf("summary invariants violated")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "decodes fine" || len(report.Skipped) != 1 {
		t.Fatalf("got %q report %+v", got, report)
	}
}

func TestRecoverEmptyDirectory(t *testing.T) {
	fs := faultio.NewMemFS()
	openMem(t, fs) // creates the directory
	_, report, err := checkpoint.Recover(fs, dir, nil)
	if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	if report.Loaded || len(report.Skipped) != 0 {
		t.Fatalf("report %+v", report)
	}
}

func TestRecoverIgnoresTempAndForeignFiles(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	if _, err := ck.Save("x", []byte("real")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ckpt-0000000000000009.ckpt.tmp", "notes.txt"} {
		f, err := fs.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("junk"))
		f.Close()
	}
	got, report, err := checkpoint.Recover(fs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "real" || len(report.Skipped) != 0 {
		t.Fatalf("got %q report %+v", got, report)
	}
}

func TestTornTempWriteLeavesPreviousGeneration(t *testing.T) {
	mem := faultio.NewMemFS()
	ck := openMem(t, mem)
	if _, err := ck.Save("x", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// Re-route the same directory through a crashing injector: the
	// second Save tears mid-write and the process "dies".
	inj := faultio.New(mem).CrashAfterBytes(10)
	ck2 := openMem(t, inj)
	if _, err := ck2.Save("x", []byte("never lands")); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("Save error = %v, want ErrCrashed", err)
	}
	// Next incarnation recovers from the pristine filesystem.
	got, report, err := checkpoint.Recover(mem, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("recovered %q", got)
	}
	// The torn temp file may remain but must not have been counted.
	if report.Generation != 0 {
		t.Fatalf("recovered generation %d, want 0", report.Generation)
	}
}

func TestTransientErrorsAreRetriedWithBackoff(t *testing.T) {
	mem := faultio.NewMemFS()
	// First two writes fail with transient EIO; the third succeeds.
	inj := faultio.New(mem).FailOp(faultio.OpWrite, 1, 2)
	var slept []time.Duration
	ck := openMem(t, inj,
		checkpoint.WithRetry(checkpoint.RetryPolicy{MaxAttempts: 5, BaseDelay: 4 * time.Millisecond, MaxDelay: 6 * time.Millisecond}),
		checkpoint.WithSleep(func(d time.Duration) { slept = append(slept, d) }),
		checkpoint.WithJitterSeed(7),
	)
	if _, err := ck.Save("x", []byte("eventually")); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 0 || d >= 6*time.Millisecond {
			t.Fatalf("sleep %d = %v outside the jitter cap", i, d)
		}
	}
	got, _, err := checkpoint.Recover(mem, dir, nil)
	if err != nil || string(got) != "eventually" {
		t.Fatalf("recover after retries: %q, %v", got, err)
	}
}

func TestPermanentErrorsAreNotRetried(t *testing.T) {
	mem := faultio.NewMemFS()
	inj := faultio.New(mem).CrashAfterBytes(0)
	calls := 0
	ck := openMem(t, inj, checkpoint.WithSleep(func(time.Duration) { calls++ }))
	if _, err := ck.Save("x", []byte("nope")); err == nil {
		t.Fatal("Save succeeded through a crash")
	}
	if calls != 0 {
		t.Fatalf("slept %d times on a permanent error", calls)
	}
}

func TestRecoverUnderShortReads(t *testing.T) {
	mem := faultio.NewMemFS()
	ck := openMem(t, mem)
	payload := bytes.Repeat([]byte("wide"), 500)
	if _, err := ck.Save("x", payload); err != nil {
		t.Fatal(err)
	}
	short := faultio.New(mem).ShortReads(3)
	got, _, err := checkpoint.Recover(short, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mangled by short reads")
	}
}

func TestCorruptionReasonsWrapErrCorrupt(t *testing.T) {
	fs := faultio.NewMemFS()
	ck := openMem(t, fs)
	if _, err := ck.Save("x", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir(dir)
	path := filepath.Join(dir, names[0])
	if err := fs.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	_, _, err := checkpoint.Recover(fs, dir, nil)
	if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsTransient(t *testing.T) {
	mem := faultio.NewMemFS()
	inj := faultio.New(mem).FailOp(faultio.OpSync, 1, 1)
	f, err := inj.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	serr := f.Sync()
	if !checkpoint.IsTransient(serr) {
		t.Fatalf("injected EIO not transient: %v", serr)
	}
	if checkpoint.IsTransient(faultio.ErrCrashed) {
		t.Fatal("crash classified as transient")
	}
	if checkpoint.IsTransient(nil) {
		t.Fatal("nil classified as transient")
	}
}
