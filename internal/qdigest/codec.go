package qdigest

import (
	"slices"

	"streamquantiles/internal/core"
)

const codecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler. The encoding is
// deterministic (nodes are sorted by id) so equal digests encode
// identically.
func (d *Digest) MarshalBinary() ([]byte, error) { return d.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (d *Digest) AppendBinary(dst []byte) ([]byte, error) {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.F64(d.eps)
	e.U64(uint64(d.bits))
	e.I64(d.n)
	e.I64(d.nextCmp)
	e.I64(d.compressions)

	ids := make([]uint64, 0, len(d.nodes))
	for id := range d.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	e.U64(uint64(len(ids)))
	for _, id := range ids {
		e.U64(id)
		e.I64(d.nodes[id])
	}
	e.U64s(d.buf)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state.
func (d *Digest) UnmarshalBinary(data []byte) error {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return core.Corruptf("qdigest: unsupported encoding version %d", v)
	}
	eps := dec.F64()
	bits := int(dec.U64())
	n := dec.I64()
	nextCmp := dec.I64()
	compressions := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	// Positive-form comparisons so NaN (which fails every comparison) is
	// rejected rather than slipping through to New's panic; the ratio
	// bound keeps New's k = ⌈bits/ε⌉ inside int64 (out-of-range
	// float-to-int conversion is undefined in Go).
	if !(eps > 0 && eps < 1) || bits < 1 || bits > maxBits || n < 0 {
		return core.Corruptf("qdigest: implausible encoded parameters eps=%v bits=%d n=%d", eps, bits, n)
	}
	if !(float64(bits)/eps <= 1<<62) {
		return core.Corruptf("qdigest: implausible eps %v for %d universe bits", eps, bits)
	}

	nd := New(eps, bits)
	nd.n = n
	nd.nextCmp = nextCmp
	nd.compressions = compressions
	count := dec.Len()
	for i := 0; i < count && dec.Err() == nil; i++ {
		id := dec.U64()
		w := dec.I64()
		if id < 1 || id >= 2*nd.u {
			return core.Corruptf("qdigest: node id %d outside tree", id)
		}
		if w < 0 {
			return core.Corruptf("qdigest: negative node weight %d", w)
		}
		nd.nodes[id] = w
	}
	buf := dec.U64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("qdigest: %d trailing bytes", dec.Remaining())
	}
	for _, x := range buf {
		if x >= nd.u {
			return core.Corruptf("qdigest: buffered element %d outside universe", x)
		}
	}
	nd.buf = append(nd.buf, buf...)
	*d = *nd
	return nil
}
