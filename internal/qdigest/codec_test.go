package qdigest

import (
	"bytes"
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestCodecRoundTrip(t *testing.T) {
	d := New(0.01, 20)
	feed(d, streamgen.Generate(streamgen.Normal{Bits: 20, Sigma: 0.1, Seed: 90}, 30000))
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 4)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != d.Count() || restored.K() != d.K() ||
		restored.UniverseBits() != d.UniverseBits() {
		t.Fatal("parameters not restored")
	}
	for _, phi := range core.EvenPhis(0.05) {
		if restored.Quantile(phi) != d.Quantile(phi) {
			t.Fatalf("quantile(%v) differs after round trip", phi)
		}
	}
	if restored.TotalWeight() != d.TotalWeight() {
		t.Error("weight not conserved through codec")
	}
}

func TestCodecDeterministicEncoding(t *testing.T) {
	// Equal digests must produce identical bytes (nodes are sorted).
	mk := func() *Digest {
		d := New(0.02, 16)
		feed(d, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 91}, 20000))
		return d
	}
	a, _ := mk().MarshalBinary()
	b, _ := mk().MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("equal digests encoded differently")
	}
}

func TestCodecContinueAndMergeAfterRestore(t *testing.T) {
	d := New(0.02, 16)
	feed(d, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 92}, 10000))
	blob, _ := d.MarshalBinary()
	restored := New(0.5, 4)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// Continue updating and merge with a fresh digest: the restored
	// instance must be fully operational.
	feed(restored, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 93}, 10000))
	other := New(0.02, 16)
	feed(other, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 94}, 10000))
	restored.Merge(other)
	if restored.Count() != 30000 {
		t.Fatalf("count %d after continue+merge", restored.Count())
	}
	if restored.TotalWeight() != 30000 {
		t.Fatalf("weight %d after continue+merge", restored.TotalWeight())
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	d := New(0.05, 12)
	feed(d, streamgen.Generate(streamgen.Uniform{Bits: 12, Seed: 95}, 3000))
	blob, _ := d.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 5 {
		var b Digest
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
	// Node id outside the tree must be rejected.
	bad := New(0.05, 12)
	bad.nodes[1<<40] = 5
	blob2, _ := bad.MarshalBinary()
	var b Digest
	if err := b.UnmarshalBinary(blob2); err == nil {
		t.Error("accepted out-of-tree node id")
	}
}
