package qdigest

import (
	"testing"

	"streamquantiles/internal/exact"
)

// Adversarial mass placements for the dyadic tree.

func TestAllMassOnOneLeaf(t *testing.T) {
	d := New(0.01, 16)
	for i := 0; i < 100000; i++ {
		d.Update(12345)
	}
	if w := d.TotalWeight(); w != 100000 {
		t.Fatalf("weight %d", w)
	}
	// The digest should collapse to a handful of nodes on the path.
	if nc := d.NodeCount(); nc > 40 {
		t.Errorf("node count %d for single-leaf mass", nc)
	}
	oracle := exact.New(constant(12345, 100000))
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		if e := oracle.QuantileError(d.Quantile(phi), phi); e > 0.01 {
			t.Errorf("phi=%v error %v", phi, e)
		}
	}
}

func TestMassOnAdjacentLeavesAcrossSubtrees(t *testing.T) {
	// 2^15−1 and 2^15 share no ancestors below the root: the worst case
	// for dyadic aggregation.
	d := New(0.01, 16)
	data := make([]uint64, 0, 60000)
	for i := 0; i < 30000; i++ {
		d.Update(1<<15 - 1)
		d.Update(1 << 15)
		data = append(data, 1<<15-1, 1<<15)
	}
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(d, 0.01)
	if maxErr > 0.01 {
		t.Errorf("adjacent-leaf max error %v", maxErr)
	}
}

func TestBoundaryValues(t *testing.T) {
	d := New(0.05, 16)
	for i := 0; i < 5000; i++ {
		d.Update(0)
		d.Update(1<<16 - 1)
	}
	if q := d.Quantile(0.01); q > 1000 {
		t.Errorf("low quantile %d, want near 0", q)
	}
	if q := d.Quantile(0.99); q < 1<<16-2 {
		t.Errorf("high quantile %d, want near max", q)
	}
}

func TestAlternatingSweep(t *testing.T) {
	// A value ramp that revisits the whole universe repeatedly, forcing
	// constant restructuring.
	d := New(0.02, 12)
	var data []uint64
	for round := 0; round < 30; round++ {
		for v := uint64(0); v < 1<<12; v += 7 {
			d.Update(v)
			data = append(data, v)
		}
	}
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(d, 0.02)
	if maxErr > 0.02 {
		t.Errorf("sweep max error %v", maxErr)
	}
	if w := d.TotalWeight(); w != int64(len(data)) {
		t.Errorf("weight %d, want %d", w, len(data))
	}
}
