package qdigest

import (
	"math"
	"testing"
	"testing/quick"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func feed(d *Digest, data []uint64) {
	for _, x := range data {
		d.Update(x)
	}
}

func TestErrorGuarantee(t *testing.T) {
	const n = 30000
	const eps = 0.01
	for _, gen := range []streamgen.Generator{
		streamgen.Uniform{Bits: 16, Seed: 1},
		streamgen.Normal{Bits: 16, Sigma: 0.1, Seed: 2},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 16, Seed: 3}},
		streamgen.Zipf{Bits: 16, S: 1.5, Seed: 4},
	} {
		data := streamgen.Generate(gen, n)
		d := New(eps, 16)
		feed(d, data)
		oracle := exact.New(data)
		maxErr, _ := oracle.EvaluateSummary(d, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε=%v", gen.Name(), maxErr, eps)
		}
	}
}

func TestWeightConservation(t *testing.T) {
	d := New(0.05, 20)
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 5}, 10000)
	for i, x := range data {
		d.Update(x)
		if (i+1)%1000 == 0 {
			if w := d.TotalWeight(); w != int64(i+1) {
				t.Fatalf("weight %d != count %d after %d updates", w, i+1, i+1)
			}
		}
	}
}

func TestWeightConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		d := New(0.1, 16)
		for _, x := range raw {
			d.Update(uint64(x))
		}
		return d.TotalWeight() == int64(len(raw)) && d.Count() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpaceBounded(t *testing.T) {
	// Digest keeps O(k) = O(log(u)/ε) nodes regardless of n.
	const eps = 0.01
	d := New(eps, 20)
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 6}, 200000)
	feed(d, data)
	bound := int(7 * float64(d.K())) // generous constant
	if nc := d.NodeCount(); nc > bound {
		t.Errorf("node count %d exceeds O(k) bound %d", nc, bound)
	}
}

func TestSmallerUniverseSmallerDigest(t *testing.T) {
	// Figure 6's driver: q-digest space scales with log u.
	const eps = 0.005
	const n = 100000
	small := New(eps, 12)
	large := New(eps, 24)
	feed(small, streamgen.Generate(streamgen.Uniform{Bits: 12, Seed: 7}, n))
	feed(large, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 7}, n))
	if small.SpaceBytes() >= large.SpaceBytes() {
		t.Errorf("space(u=2^12)=%d not below space(u=2^24)=%d",
			small.SpaceBytes(), large.SpaceBytes())
	}
}

func TestMergePreservesAccuracy(t *testing.T) {
	const eps = 0.01
	const n = 20000
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 8}, n)
	dataB := streamgen.Generate(streamgen.Normal{Bits: 16, Sigma: 0.2, Seed: 9}, n)
	a := New(eps, 16)
	b := New(eps, 16)
	feed(a, dataA)
	feed(b, dataB)
	a.Merge(b)

	all := append(append([]uint64{}, dataA...), dataB...)
	oracle := exact.New(all)
	if a.Count() != int64(len(all)) {
		t.Fatalf("merged count %d, want %d", a.Count(), len(all))
	}
	// Merging may add one εn per merge; allow 2ε total.
	maxErr, _ := oracle.EvaluateSummary(a, eps)
	if maxErr > 2*eps {
		t.Errorf("merged digest max error %v exceeds 2ε", maxErr)
	}
}

func TestMergeManyWays(t *testing.T) {
	// Mergeability in arbitrary fan-in: 8 shards merged pairwise as a tree.
	const eps = 0.02
	const per = 5000
	var shards []*Digest
	var all []uint64
	for i := 0; i < 8; i++ {
		data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: uint64(10 + i)}, per)
		all = append(all, data...)
		d := New(eps, 16)
		feed(d, data)
		shards = append(shards, d)
	}
	for len(shards) > 1 {
		var next []*Digest
		for i := 0; i+1 < len(shards); i += 2 {
			shards[i].Merge(shards[i+1])
			next = append(next, shards[i])
		}
		shards = next
	}
	oracle := exact.New(all)
	maxErr, _ := oracle.EvaluateSummary(shards[0], eps)
	if maxErr > 3*eps {
		t.Errorf("tree-merged digest max error %v exceeds 3ε", maxErr)
	}
}

func TestMergeParameterMismatchPanics(t *testing.T) {
	a := New(0.01, 16)
	b := New(0.01, 18)
	defer func() {
		if recover() == nil {
			t.Error("Merge with different universes did not panic")
		}
	}()
	a.Merge(b)
}

func TestOutOfUniversePanics(t *testing.T) {
	d := New(0.1, 8)
	defer func() {
		if recover() == nil {
			t.Error("Update(256) on 2^8 universe did not panic")
		}
	}()
	d.Update(256)
}

func TestBadParamsPanic(t *testing.T) {
	for _, c := range []struct {
		eps  float64
		bits int
	}{{0, 16}, {1, 16}, {math.NaN(), 16}, {0.1, 0}, {0.1, 63}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %d) did not panic", c.eps, c.bits)
				}
			}()
			New(c.eps, c.bits)
		}()
	}
}

func TestEmptyQuantilePanics(t *testing.T) {
	d := New(0.1, 16)
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty digest did not panic")
		}
	}()
	d.Quantile(0.5)
}

func TestConstantStream(t *testing.T) {
	d := New(0.05, 16)
	for i := 0; i < 10000; i++ {
		d.Update(777)
	}
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		q := d.Quantile(phi)
		// q-digest reports interval right endpoints; the reported value
		// must still have rank error ≤ εn, and with all mass at 777 any
		// reported q has rank interval containing every target iff q
		// resolves to a node whose span includes 777.
		oracle := exact.New(constant(777, 10000))
		if e := oracle.QuantileError(q, phi); e > 0.05 {
			t.Errorf("quantile(%v) = %d with error %v", phi, q, e)
		}
	}
}

func constant(v uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestRankAccuracy(t *testing.T) {
	const n = 50000
	const eps = 0.01
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 20}, n)
	d := New(eps, 16)
	feed(d, data)
	oracle := exact.New(data)
	for _, probe := range []uint64{1 << 14, 1 << 15, 3 << 14} {
		got := d.Rank(probe)
		want := oracle.Rank(probe)
		if math.Abs(float64(got-want)) > eps*n {
			t.Errorf("Rank(%d) = %d, exact %d (off > εn)", probe, got, want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	d := New(0.01, 20)
	feed(d, streamgen.Generate(streamgen.Normal{Bits: 20, Sigma: 0.15, Seed: 21}, 30000))
	prev := uint64(0)
	for _, phi := range core.EvenPhis(0.02) {
		q := d.Quantile(phi)
		if q < prev {
			t.Fatalf("quantiles not monotone at phi=%v: %d < %d", phi, q, prev)
		}
		prev = q
	}
}

func TestCompressionsAmortized(t *testing.T) {
	// COMPRESS runs O(log n) times from the doubling schedule plus a
	// bounded number of size-triggered passes — far fewer than one per
	// buffer drain (n/bufCap = 128 here).
	d := New(0.01, 20)
	feed(d, streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 22}, 1<<17))
	if c := d.Compressions(); c > 60 {
		t.Errorf("%d COMPRESS passes for n=2^17; amortization broken", c)
	}
}

func TestSpanAndLevel(t *testing.T) {
	d := New(0.1, 4) // universe [0, 16)
	if lv := d.level(1); lv != 0 {
		t.Errorf("level(root) = %d", lv)
	}
	if lv := d.level(16); lv != 4 {
		t.Errorf("level(first leaf) = %d", lv)
	}
	lo, hi := d.span(1)
	if lo != 0 || hi != 15 {
		t.Errorf("span(root) = [%d,%d], want [0,15]", lo, hi)
	}
	lo, hi = d.span(16)
	if lo != 0 || hi != 0 {
		t.Errorf("span(leaf 16) = [%d,%d], want [0,0]", lo, hi)
	}
	lo, hi = d.span(31)
	if lo != 15 || hi != 15 {
		t.Errorf("span(leaf 31) = [%d,%d], want [15,15]", lo, hi)
	}
	lo, hi = d.span(2)
	if lo != 0 || hi != 7 {
		t.Errorf("span(2) = [%d,%d], want [0,7]", lo, hi)
	}
	lo, hi = d.span(5)
	if lo != 4 || hi != 7 {
		t.Errorf("span(5) = [%d,%d], want [4,7]", lo, hi)
	}
}

func BenchmarkUpdate(b *testing.B) {
	d := New(0.001, 24)
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Update(data[i&(1<<16-1)])
	}
}

func BenchmarkQuantile(b *testing.B) {
	d := New(0.001, 24)
	feed(d, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 1}, 1<<18))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Quantile(0.5)
	}
}
