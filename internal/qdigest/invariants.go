package qdigest

import "fmt"

// Invariants implements invariant.Checkable: the structural q-digest
// properties the (log₂u)·n/k rank-error bound is proved from.
//
//   - Every stored node id addresses a real tree node: 1 ≤ id < 2u.
//   - Stored weights are positive (zero-weight nodes are deleted, not
//     kept).
//   - Weight conservation: node weights plus pending buffered updates sum
//     to exactly n.
//   - The digest size property: an interior node (neither the root nor a
//     leaf) never holds more than ⌊n/k⌋ weight. Interior weights are only
//     written by COMPRESS folds, which admit at most the capacity of
//     their pass, and ⌊n/k⌋ only grows afterwards (including across
//     Merge, since ⌊n₁/k⌋ + ⌊n₂/k⌋ ≤ ⌊(n₁+n₂)/k⌋). Leaves and the root
//     legitimately exceed it.
func (d *Digest) Invariants() error {
	if d.n < 0 {
		return fmt.Errorf("qdigest: negative count %d", d.n)
	}
	if d.k < 1 {
		return fmt.Errorf("qdigest: compression factor %d < 1", d.k)
	}
	capacity := d.n / d.k
	var sum int64
	for id, w := range d.nodes {
		if id < 1 || id >= 2*d.u {
			return fmt.Errorf("qdigest: node id %d outside tree [1, %d)", id, 2*d.u)
		}
		if w < 1 {
			return fmt.Errorf("qdigest: node %d stores non-positive weight %d", id, w)
		}
		if id > 1 && id < d.u && w > capacity {
			return fmt.Errorf("qdigest: interior node %d (level %d) holds %d > ⌊n/k⌋ = %d",
				id, d.level(id), w, capacity)
		}
		sum += w
	}
	if total := sum + int64(len(d.buf)); total != d.n {
		return fmt.Errorf("qdigest: weight not conserved: nodes %d + pending %d != n = %d",
			sum, len(d.buf), d.n)
	}
	return nil
}
