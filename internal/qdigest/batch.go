package qdigest

import (
	"fmt"

	"streamquantiles/internal/core"
)

// UpdateBatch implements core.BatchCashRegister. Elements are validated
// up front, then copied into the pending buffer in chunks cut at the
// two drain triggers — a full buffer or n reaching the compression
// point — so drains happen at exactly the per-item positions and the
// resulting state is byte-identical to per-item Update. (Update is
// always entered with n < nextCmp: drain either runs COMPRESS and sets
// nextCmp = 2n > n, or was triggered by the buffer filling before the
// compression point.)
func (d *Digest) UpdateBatch(xs []uint64) {
	for _, x := range xs {
		d.checkElement(x)
	}
	for len(xs) > 0 {
		take := cap(d.buf) - len(d.buf)
		if take > len(xs) {
			take = len(xs)
		}
		if d.n < d.nextCmp && d.n+int64(take) > d.nextCmp {
			take = int(d.nextCmp - d.n)
		}
		d.buf = append(d.buf, xs[:take]...)
		d.n += int64(take)
		xs = xs[take:]
		if len(d.buf) == cap(d.buf) || d.n >= d.nextCmp {
			d.drain()
		}
	}
}

// MergeSummary implements core.Mergeable. Merging drains other's
// pending buffer into its node map — a transparent operation its own
// queries also perform — but leaves it semantically unchanged.
func (d *Digest) MergeSummary(other core.Summary) error {
	o, ok := other.(*Digest)
	if !ok {
		return fmt.Errorf("qdigest: cannot merge a %T", other)
	}
	if o.bits != d.bits || o.k != d.k {
		return fmt.Errorf("qdigest: cannot merge digests with parameters (bits=%d, k=%d) and (bits=%d, k=%d)",
			d.bits, d.k, o.bits, o.k)
	}
	d.Merge(o)
	return nil
}
