// Package qdigest implements the q-digest quantile summary of
// Shrivastava, Buragohain, Agrawal and Suri (SenSys 2004) in the fast,
// hash-addressed form the paper benchmarks as FastQDigest.
//
// A q-digest summarizes a stream over the fixed universe [0, u), u a
// power of two, by maintaining counts on nodes of the dyadic (binary)
// tree over the universe. A node keeps weight only while the digest
// property holds — a stored non-root node v and its sibling and parent
// together hold more than ⌊n/k⌋ weight — otherwise the weights are folded
// into the parent by COMPRESS. The digest then has O(k) nodes and rank
// queries err by at most (log₂ u)·n/k, so k = ⌈log₂(u)/ε⌉ gives an
// ε-approximate summary of size O((1/ε)·log u).
//
// It is the only deterministic *mergeable* summary in the study: two
// digests over the same universe combine by adding node weights, which
// makes it the method of choice for sensor-network style aggregation
// even though it never wins the streaming benchmarks (paper §4.2.4).
package qdigest

import (
	"fmt"
	"math"
	"sort"

	"streamquantiles/internal/core"
)

// Digest is a q-digest over the universe [0, 2^bits).
//
// Nodes are addressed heap-style: the root is 1, node i has children 2i
// and 2i+1, and leaf u+x represents the value x. The node set lives in a
// hash map so updates touch only the leaf, with COMPRESS amortized by
// running each time the stream doubles.
type Digest struct {
	bits  int
	u     uint64 // universe size 2^bits
	k     int64  // compression factor
	eps   float64
	n     int64
	nodes map[uint64]int64

	buf          []uint64 // pending leaf updates, bulk-applied
	nextCmp      int64    // run COMPRESS when n reaches this
	compressions int64    // number of COMPRESS invocations (observability)

	// Query-path scratch, struct-owned: queries drain the buffer and so
	// already demand the same exclusivity as updates (the Safe wrapper
	// enforces it). Rebuilt per query, allocation-free at steady state.
	snap    snapCols
	rawSnap snapCols
	order   []int
	steps   stepCols
	rvals   []uint64
	rranks  []int64
}

// maxBits bounds the universe so node ids (2u) fit comfortably in uint64.
const maxBits = 62

// bufCap is the pending-update buffer size of the fast variant.
const bufCap = 1024

// New returns an empty q-digest with error parameter eps over the
// universe [0, 2^bits).
func New(eps float64, bits int) *Digest {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("qdigest: error parameter %v outside (0, 1)", eps))
	}
	if bits < 1 || bits > maxBits {
		panic(fmt.Sprintf("qdigest: universe bits %d outside [1, %d]", bits, maxBits))
	}
	k := int64(math.Ceil(float64(bits) / eps))
	return &Digest{
		bits:    bits,
		u:       uint64(1) << bits,
		k:       k,
		eps:     eps,
		nodes:   make(map[uint64]int64),
		buf:     make([]uint64, 0, bufCap),
		nextCmp: 1,
	}
}

// Eps returns the error parameter.
func (d *Digest) Eps() float64 { return d.eps }

// UniverseBits returns log₂ u.
func (d *Digest) UniverseBits() int { return d.bits }

// K returns the compression factor ⌈log₂(u)/ε⌉.
func (d *Digest) K() int64 { return d.k }

// Count implements core.Summary.
func (d *Digest) Count() int64 { return d.n }

// NodeCount reports the number of stored tree nodes after draining the
// update buffer.
func (d *Digest) NodeCount() int {
	d.drain()
	return len(d.nodes)
}

// Compressions reports how many COMPRESS passes have run.
func (d *Digest) Compressions() int64 { return d.compressions }

// checkElement validates that x fits the digest's fixed universe, the
// documented contract of Update.
func (d *Digest) checkElement(x uint64) {
	if x >= d.u {
		panic(fmt.Sprintf("qdigest: element %d outside universe [0, %d)", x, d.u))
	}
}

// Update implements core.CashRegister.
func (d *Digest) Update(x uint64) {
	d.checkElement(x)
	d.n++
	d.buf = append(d.buf, x)
	if len(d.buf) == cap(d.buf) || d.n >= d.nextCmp {
		d.drain()
	}
}

// drain applies buffered leaf increments and runs COMPRESS when the
// stream has doubled since the last pass or the node set outgrew its
// post-compress bound — the trigger that keeps the structure O(k)-sized
// with O(1) amortized work per update.
func (d *Digest) drain() {
	for _, x := range d.buf {
		d.nodes[d.u+x]++
	}
	d.buf = d.buf[:0]
	if d.n >= d.nextCmp || int64(len(d.nodes)) > 6*d.k {
		d.compress()
		d.nextCmp = 2 * d.n
	}
}

// compress restores the digest property bottom-up: any stored non-root
// node whose triangle (self + sibling + parent) fits within ⌊n/k⌋ is
// folded into its parent. Folds cascade within a single pass: a parent
// created by a fold is appended to its level's worklist and reconsidered
// when the sweep reaches that level.
func (d *Digest) compress() {
	d.compressions++
	capacity := d.n / d.k
	if capacity <= 0 {
		return
	}
	levels := make([][]uint64, d.bits+1)
	for id := range d.nodes {
		levels[d.level(id)] = append(levels[d.level(id)], id)
	}
	for lv := d.bits; lv >= 1; lv-- {
		for _, id := range levels[lv] {
			c, ok := d.nodes[id]
			if !ok {
				continue // already folded as a sibling
			}
			sib := id ^ 1
			par := id >> 1
			total := c + d.nodes[sib] + d.nodes[par]
			if total <= capacity {
				d.nodes[par] = total
				delete(d.nodes, id)
				delete(d.nodes, sib)
				levels[lv-1] = append(levels[lv-1], par)
			}
		}
	}
}

// level returns the depth of node id: 0 for the root, bits for leaves.
func (d *Digest) level(id uint64) int {
	lv := -1
	for id > 0 {
		id >>= 1
		lv++
	}
	return lv
}

// span returns the universe interval [lo, hi] covered by node id.
func (d *Digest) span(id uint64) (lo, hi uint64) {
	lv := d.level(id)
	width := d.bits - lv // log2 of interval length
	idx := id - (uint64(1) << lv)
	lo = idx << width
	hi = lo + (uint64(1)<<width - 1)
	return lo, hi
}

// snapCols is the columnar post-order snapshot: parallel lo/hi/weight
// columns sorted by (interval hi, interval size) — the traversal used
// for rank accumulation — plus the running prefix weight, which turns
// quantile extraction into a single search on a sorted column.
type snapCols struct {
	los, his []uint64
	ws       []int64
	prefix   []int64 // prefix[i] = Σ ws[0..i]
}

func (s *snapCols) reset() {
	s.los, s.his = s.los[:0], s.his[:0]
	s.ws, s.prefix = s.ws[:0], s.prefix[:0]
}

// stepCols is the columnar rank step function: threshold and delta
// columns prior to sorting and prefix-summing.
type stepCols struct {
	ats []uint64
	ds  []int64
}

// Flush drains the pending update buffer into the node map. Queries do
// this implicitly; Flush lets callers — notably the Safe wrappers,
// which use it to detect query-time mutation — force it explicitly.
func (d *Digest) Flush() { d.drain() }

// snapshot rebuilds the columnar post-order view in d.snap. All scratch
// is struct-owned: queries drain the pending buffer (a mutation), so the
// digest already requires external synchronization between queries.
func (d *Digest) snapshot() *snapCols {
	d.drain()
	raw := &d.rawSnap
	raw.reset()
	for id, w := range d.nodes {
		lo, hi := d.span(id)
		raw.los = append(raw.los, lo)
		raw.his = append(raw.his, hi)
		raw.ws = append(raw.ws, w)
	}
	// Index sort over the raw columns, then gather into the sorted set;
	// (hi, lo) identifies a dyadic interval uniquely, so the order is
	// total and the map's iteration order cannot leak through.
	order := d.order[:0]
	for i := range raw.ws {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if raw.his[i] != raw.his[j] {
			return raw.his[i] < raw.his[j]
		}
		// Equal right endpoints: the smaller (descendant) interval first.
		return raw.los[i] > raw.los[j]
	})
	d.order = order
	s := &d.snap
	s.reset()
	var cum int64
	for _, i := range order {
		cum += raw.ws[i]
		s.los = append(s.los, raw.los[i])
		s.his = append(s.his, raw.his[i])
		s.ws = append(s.ws, raw.ws[i])
		s.prefix = append(s.prefix, cum)
	}
	return s
}

// Quantile implements core.Summary: report the right endpoint of the
// post-order node where the accumulated weight reaches ⌊φn⌋+1 — a
// branch-free search on the prefix-weight column.
func (d *Digest) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if d.n == 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, d.n) + 1
	s := d.snapshot()
	lo := core.SearchGe(s.prefix, target)
	if lo >= len(s.his) {
		lo = len(s.his) - 1
	}
	return s.his[lo]
}

// QuantileBatch implements core.QuantileBatcher: one snapshot answers
// the whole batch, each query a branch-free search on the prefix-weight
// column (identical to the per-φ rule: first prefix ≥ target).
func (d *Digest) QuantileBatch(phis []float64) []uint64 {
	if d.n == 0 {
		panic(core.ErrEmpty)
	}
	s := d.snapshot()
	out := make([]uint64, len(phis))
	for i, phi := range phis {
		core.CheckPhi(phi)
		target := core.TargetRank(phi, d.n) + 1
		lo := core.SearchGe(s.prefix, target)
		if lo >= len(s.his) {
			lo = len(s.his) - 1
		}
		out[i] = s.his[lo]
	}
	return out
}

// Rank implements core.Summary: nodes entirely below x count fully,
// nodes straddling x count half (midpoint convention).
func (d *Digest) Rank(x uint64) int64 {
	s := d.snapshot()
	var r int64
	for i, hi := range s.his {
		switch {
		case hi < x:
			r += s.ws[i]
		case s.los[i] < x:
			r += s.ws[i] / 2
		}
	}
	return r
}

// rankSteps flattens the midpoint rank rule into a step function of x:
// a node contributes w/2 once x exceeds its lo and the remaining
// w − w/2 once x exceeds its hi, so the rank at x is the prefix sum of
// all step deltas at thresholds ≤ x. Addition is commutative, so the
// values are identical to the per-x postorder accumulation. The
// threshold/delta pairs live in parallel columns ordered by an index
// sort; ties collapse into one threshold, so tie order is immaterial.
func (d *Digest) rankSteps(s *snapCols) ([]uint64, []int64) {
	st := &d.steps
	st.ats, st.ds = st.ats[:0], st.ds[:0]
	for i, w := range s.ws {
		half := w / 2
		st.ats = append(st.ats, s.los[i]+1)
		st.ds = append(st.ds, half)
		if s.his[i] != ^uint64(0) {
			// hi = max uint64 can never be exceeded by any x; the full
			// contribution step would overflow and never fires anyway.
			st.ats = append(st.ats, s.his[i]+1)
			st.ds = append(st.ds, w-half)
		}
	}
	order := d.order[:0]
	for i := range st.ats {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return st.ats[order[a]] < st.ats[order[b]] })
	d.order = order
	vals, ranks := d.rvals[:0], d.rranks[:0]
	var cum int64
	for _, i := range order {
		cum += st.ds[i]
		if k := len(vals); k > 0 && vals[k-1] == st.ats[i] {
			ranks[k-1] = cum
			continue
		}
		vals = append(vals, st.ats[i])
		ranks = append(ranks, cum)
	}
	d.rvals, d.rranks = vals, ranks
	return vals, ranks
}

// RankBatch implements core.QuantileBatcher: the step function is built
// once (O(s log s)), then every query is a branch-free search for the
// largest threshold ≤ x.
func (d *Digest) RankBatch(xs []uint64) []int64 {
	vals, ranks := d.rankSteps(d.snapshot())
	out := make([]int64, len(xs))
	for i, x := range xs {
		if lo := core.SearchGt(vals, x); lo > 0 {
			out[i] = ranks[lo-1]
		}
	}
	return out
}

// AppendQuerySnapshot implements core.Snapshotter: the quantile side is
// the postorder prefix-weight scan (first accumulated weight > ⌊φn⌋
// reports that node's hi), the rank side is the step function of
// rankSteps. Both are byte-identical to the live queries.
func (d *Digest) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	qs.Reset()
	qs.N = d.n
	if d.n == 0 {
		return
	}
	s := d.snapshot()
	qs.QVals = append(qs.QVals, s.his...)
	qs.QKeys = append(qs.QKeys, s.prefix...)
	vals, ranks := d.rankSteps(s)
	qs.RVals = append(qs.RVals, vals...)
	qs.RRanks = append(qs.RRanks, ranks...)
}

// Merge folds other into d. Both digests must share eps and universe;
// other is left unchanged. This is the mergeable-summary operation that
// distinguishes q-digest from the other deterministic algorithms.
// checkCompatible validates a merge partner: both digests must share
// the universe size and the compression factor k.
func (d *Digest) checkCompatible(other *Digest) {
	if other.bits != d.bits || other.k != d.k {
		panic("qdigest: merging digests with different parameters")
	}
}

func (d *Digest) Merge(other *Digest) {
	d.checkCompatible(other)
	d.drain()
	other.drain()
	for id, w := range other.nodes {
		d.nodes[id] += w
	}
	d.n += other.n
	d.compress()
	d.nextCmp = 2 * d.n
}

// SpaceBytes implements core.Summary. Each stored node is charged three
// words (id, counter, and one word of hash-table overhead), pending
// buffer slots one word each (by capacity, as they are pre-allocated),
// plus scalar state and the retained query scratch columns.
func (d *Digest) SpaceBytes() int64 {
	words := int64(len(d.nodes))*3 + int64(cap(d.buf)) + 6
	words += int64(cap(d.snap.los))*4 + int64(cap(d.rawSnap.los))*4 +
		int64(cap(d.order)) + int64(cap(d.steps.ats))*2 +
		int64(cap(d.rvals)) + int64(cap(d.rranks))
	return words * core.WordBytes
}

// TotalWeight returns the sum of all node weights plus pending buffer
// entries; it must always equal Count(). Test hook for the conservation
// invariant.
func (d *Digest) TotalWeight() int64 {
	var sum int64
	for _, w := range d.nodes {
		sum += w
	}
	return sum + int64(len(d.buf))
}
