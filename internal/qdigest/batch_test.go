package qdigest

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestBatchMatchesSingle(t *testing.T) {
	d := New(0.01, 20)
	feed(d, streamgen.Generate(streamgen.Normal{Bits: 20, Sigma: 0.15, Seed: 110}, 40000))
	phis := append(core.EvenPhis(0.02), 0.001, 0.999, 0.5)
	batch := d.QuantileBatch(phis)
	if len(batch) != len(phis) {
		t.Fatalf("batch returned %d answers for %d fractions", len(batch), len(phis))
	}
	for i, phi := range phis {
		if single := d.Quantile(phi); single != batch[i] {
			t.Errorf("phi=%v: single %d, batch %d", phi, single, batch[i])
		}
	}
}

func TestBatchEmptyPanics(t *testing.T) {
	d := New(0.1, 8)
	defer func() {
		if recover() == nil {
			t.Error("batch on empty digest did not panic")
		}
	}()
	d.QuantileBatch([]float64{0.5})
}

func TestBatchUnsortedFractions(t *testing.T) {
	d := New(0.05, 16)
	feed(d, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 111}, 10000))
	phis := []float64{0.9, 0.1, 0.5}
	batch := d.QuantileBatch(phis)
	if batch[0] < batch[2] || batch[2] < batch[1] {
		t.Errorf("answers not aligned with input order: %v", batch)
	}
}
