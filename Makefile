# Convenience targets for the streamquantiles reproduction.

GO ?= go

.PHONY: all build test race lint check bench experiments report html clean

all: build test lint

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repo-specific static analysis (rules SQ001-SQ005); see cmd/quantlint.
lint:
	$(GO) run ./cmd/quantlint ./...

# Deep invariant checking: the sqcheck build tag arms the runtime
# sanitizer inside the test suite's samplers.
check:
	$(GO) test -tags sqcheck ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate EXPERIMENTS.md (several minutes at the default n).
experiments:
	$(GO) run ./cmd/quantbench -all -format markdown > EXPERIMENTS.md

# Self-contained HTML results page.
html:
	$(GO) run ./cmd/quantbench -all -format html > results.html

clean:
	$(GO) clean ./...
	rm -f results.html test_output.txt bench_output.txt
