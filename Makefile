# Convenience targets for the streamquantiles reproduction.

GO ?= go

.PHONY: all verify build test race lint lint-strict check crash stress-smoke fuzz bench bench-all bench-baselines bench-ingest bench-query bench-parallel parallel-smoke bench-checkpoint checkpoint-smoke bench-compare experiments report html clean

all: build test lint

# The umbrella gate CI runs: build + vet, the test suite, the race
# detector, strict quantlint (all 15 rules, waived findings inventoried),
# the sqcheck deep-sanitizer pass, a seeded quantstress soak and the
# multi-writer scaling and checkpoint fan-out efficiency smokes.
verify: build test lint-strict race check stress-smoke parallel-smoke checkpoint-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The harness package re-runs the paper experiments under the race
# detector, which alone takes ~7-8 minutes on a small container —
# raise the per-package timeout above go test's 10m default so the
# parallel package mix doesn't trip it.
race:
	$(GO) test -race -timeout 30m ./...

# Repo-specific static analysis (rules SQ001-SQ015); see cmd/quantlint.
lint:
	$(GO) run ./cmd/quantlint ./...

# As lint, but also prints the findings waived by //lint:ignore
# directives so the suppression inventory stays reviewable.
lint-strict:
	$(GO) run ./cmd/quantlint -strict ./...

# Deep invariant checking: the sqcheck build tag arms the runtime
# sanitizer inside the test suite's samplers.
check:
	$(GO) test -tags sqcheck ./...

# Fault-injected crash recovery: the full matrix (every registered
# summary x torn write / bit flip / short read / transient EIO), the
# checkpoint and fault-injection packages, and the kill -9 CLI resume
# test, all under -race with the sqcheck sanitizer armed.
crash:
	$(GO) test -race -tags sqcheck -run 'TestCrashRecovery' -v -count=1 .
	$(GO) test -race -tags sqcheck -count=1 ./internal/checkpoint/ ./internal/faultio/
	$(GO) test -race -count=1 -run 'TestKillNineResume|TestSaveLoad|TestResume' ./cmd/quantcli/
	$(GO) test -race -count=1 -run 'TestKillNineResume|TestShortSoakFaults' ./cmd/quantstress/

# Seeded elasticity soak: mixed read/write traffic with online
# reshards, a re-ε rebuild, checkpointing under injected faults and
# recovery drills, asserting rank-error bounds, count conservation and
# structural invariants throughout. Deterministic per seed, so a
# failure reproduces from the printed flags; the race-built pass drives
# the same shape through the race detector.
STRESS_OPS ?= 60000
# The drain bound asserts the elastic protocol's promise: ingestion
# stalls for at most one shard's drain, and no single drain may take
# seconds at smoke scale even on a loaded shared runner.
STRESS_DRAIN_MAX ?= 2s
# The checkpoint bound asserts the save path's stop-the-shard promise:
# a save stalls ingestion for at most one shard's marshal, never the
# whole container's, so no single per-shard marshal may take seconds.
STRESS_CKPT_MAX ?= 2s
stress-smoke:
	$(GO) build -o /tmp/sq_quantstress ./cmd/quantstress
	/tmp/sq_quantstress -algo kll -bits 14 -ops $(STRESS_OPS) -dist zipf -reshard 6,3 -retarget-eps 0.02 -ckpt-dir /tmp/sq_stress_ck -ckpt-every 20000 -faults -verify-every 30000 -slo-drain-max $(STRESS_DRAIN_MAX) -slo-checkpoint-max $(STRESS_CKPT_MAX)
	/tmp/sq_quantstress -algo mrl99 -bits 14 -ops $(STRESS_OPS) -dist uniform -reshard 6 -verify-every 30000 -slo-drain-max $(STRESS_DRAIN_MAX)
	/tmp/sq_quantstress -algo dcs -bits 12 -ops $(STRESS_OPS) -dist ooo -reshard 5,2 -verify-every 30000 -slo-drain-max $(STRESS_DRAIN_MAX)
	rm -rf /tmp/sq_stress_ck
	$(GO) run -race ./cmd/quantstress -algo gkarray -bits 14 -ops 30000 -dist zipf -reshard 5 -retarget-eps 0.02
	$(GO) test -race -count=1 -run 'TestShortSoak|TestKillNineResume' ./cmd/quantstress/

# Short live-fuzz session over the decoder harnesses (the seed corpus
# alone runs as part of `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDecodeMutated -fuzztime=60s -run FuzzDecodeMutated .
	$(GO) test -fuzz=FuzzDecode -fuzztime=60s -run FuzzDecode ./internal/freqsketch/

bench:
	$(GO) test -bench=. -benchmem ./...

# Ingestion throughput: per-item vs batched updates for every summary,
# and sharded scaling at P=1,2,4,8. Writes the committed baseline from
# the conservative merge of several passes (fastest item-at-a-time rate,
# slowest batch rate — so the recorded speedups lower-bound a typical
# run); CI re-measures at reduced n and compares batch speedups against
# it.
INGEST_N ?= 2000000
INGEST_RUNS ?= 3
bench-ingest:
	$(GO) run ./cmd/quantbench -ingest -n $(INGEST_N) -ingest-runs $(INGEST_RUNS) -ingest-out BENCH_ingest.json

# Query-path throughput: per-phi vs single-pass batched vs
# snapshot-cached quantile extraction for every summary, plus the
# sharded fold cache. Writes the committed baseline from the
# conservative merge of several passes (so CI's single pass clears the
# 25%-tolerance floors even on noisy runners); CI re-measures at the
# same n — cached speedups grow with n — and compares the ratios.
QUERY_N ?= 2000000
QUERY_RUNS ?= 3
bench-query:
	$(GO) run ./cmd/quantbench -query -n $(QUERY_N) -query-runs $(QUERY_RUNS) -query-out BENCH_query.json

# Multi-core write-path scaling: W writer goroutines, each with its own
# AcquireWriter handle, feed a W-shard container element-at-a-time at
# W = 1, 2, 4 and NumCPU. The committed baseline merges several passes
# conservatively (fastest 1-writer rate, slowest multi-writer rate) so
# its efficiency floors lower-bound a typical run; the compare gates on
# scaling efficiency — rate(W) / (rate(1) x min(W, GOMAXPROCS)) — which
# is machine-portable where absolute Melem/s is not.
PARALLEL_N ?= 2000000
PARALLEL_RUNS ?= 3
bench-parallel:
	$(GO) run ./cmd/quantbench -parallel -n $(PARALLEL_N) -parallel-runs $(PARALLEL_RUNS) -parallel-out BENCH_parallel.json

# Scaling-efficiency smoke (part of `make verify`): one reduced-n
# parallel pass compared against the committed BENCH_parallel.json at
# the default 25% tolerance. Efficiency is normalized to the measuring
# machine's cores, so the same committed baseline gates a 1-core
# container (pure handle overhead) and a 4-core runner (where a 0.75
# floor at W=4 demands >= 3x the 1-writer throughput).
PARALLEL_SMOKE_N ?= 500000
parallel-smoke:
	$(GO) run ./cmd/quantbench -parallel -n $(PARALLEL_SMOKE_N) -parallel-out /tmp/sq_parallel_ci.json
	$(GO) run ./cmd/quantbench -parallel-compare BENCH_parallel.json /tmp/sq_parallel_ci.json

# Durability-path scaling: save (per-shard fan-out marshal + framed
# write) and recover (pipelined CRC verify + fan-out decode) of a
# 64-shard container, swept over worker counts P = 1/4/16/64. The
# committed baseline merges several passes conservatively (fastest
# sequential rate, slowest fan-out rate) and the compare gates on
# scaling efficiency — rate(P) / (rate(1) x min(P, GOMAXPROCS)) — the
# same machine-portable normalization as bench-parallel.
CHECKPOINT_N ?= 2000000
CHECKPOINT_RUNS ?= 3
bench-checkpoint:
	$(GO) run ./cmd/quantbench -checkpoint -n $(CHECKPOINT_N) -checkpoint-runs $(CHECKPOINT_RUNS) -checkpoint-out BENCH_checkpoint.json

# Checkpoint fan-out smoke (part of `make verify`): one reduced-n
# save/recover sweep compared against the committed
# BENCH_checkpoint.json at the default 25% tolerance. On a 1-core
# container every efficiency measures pure fan-out overhead; on a
# 4-core runner the baseline's 0.86-class floors at P = 64 demand
# roughly 3x the sequential save and recover rate.
CHECKPOINT_SMOKE_N ?= 500000
checkpoint-smoke:
	$(GO) run ./cmd/quantbench -checkpoint -n $(CHECKPOINT_SMOKE_N) -checkpoint-out /tmp/sq_checkpoint_ci.json
	$(GO) run ./cmd/quantbench -checkpoint-compare BENCH_checkpoint.json /tmp/sq_checkpoint_ci.json

# Refresh the committed baselines in one go.
bench-baselines: bench-ingest bench-query bench-parallel bench-checkpoint

# Regression gate: re-measure one pass of each path at a reduced n and
# compare the speedup ratios against the committed baselines under the
# default 25% tolerance (absolute rates vary with machine and n; the
# ratios are what the batch/snapshot work promises). bench-all is the
# one-command local mirror of CI's two benchmark gates.
bench-all: bench-compare
COMPARE_N ?= 500000
bench-compare:
	$(GO) run ./cmd/quantbench -ingest -n $(COMPARE_N) -ingest-out /tmp/sq_ingest_ci.json
	$(GO) run ./cmd/quantbench -ingest-compare BENCH_ingest.json /tmp/sq_ingest_ci.json
	$(GO) run ./cmd/quantbench -query -n $(COMPARE_N) -query-out /tmp/sq_query_ci.json
	$(GO) run ./cmd/quantbench -query-compare BENCH_query.json /tmp/sq_query_ci.json
	$(GO) run ./cmd/quantbench -parallel -n $(COMPARE_N) -parallel-out /tmp/sq_parallel_ci.json
	$(GO) run ./cmd/quantbench -parallel-compare BENCH_parallel.json /tmp/sq_parallel_ci.json
	$(GO) run ./cmd/quantbench -checkpoint -n $(COMPARE_N) -checkpoint-out /tmp/sq_checkpoint_ci.json
	$(GO) run ./cmd/quantbench -checkpoint-compare BENCH_checkpoint.json /tmp/sq_checkpoint_ci.json

# Regenerate EXPERIMENTS.md (several minutes at the default n).
experiments:
	$(GO) run ./cmd/quantbench -all -format markdown > EXPERIMENTS.md

# Self-contained HTML results page.
html:
	$(GO) run ./cmd/quantbench -all -format html > results.html

clean:
	$(GO) clean ./...
	rm -f results.html test_output.txt bench_output.txt
