# Convenience targets for the streamquantiles reproduction.

GO ?= go

.PHONY: all build test race bench experiments report html clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate EXPERIMENTS.md (several minutes at the default n).
experiments:
	$(GO) run ./cmd/quantbench -all -format markdown > EXPERIMENTS.md

# Self-contained HTML results page.
html:
	$(GO) run ./cmd/quantbench -all -format html > results.html

clean:
	$(GO) clean ./...
	rm -f results.html test_output.txt bench_output.txt
