package streamquantiles

import (
	"sort"
	"sync"
	"testing"

	"streamquantiles/internal/core"
)

// Sharded-ingestion properties: a P-way sharded summary fed the same
// stream (in any partition) must answer within the composed ε bound —
// every shard contributes at most εᵢnᵢ rank error and Σ εᵢnᵢ ≤ εn —
// whether queries combine shards by merging or by additive rank
// estimation. The concurrent tests run the actual multi-writer path and
// are meaningful under -race.

// mustShardedCash builds a sharded cash-register container, failing the
// test on a constructor error (valid topologies in these tests).
func mustShardedCash(t testing.TB, p int, fresh func() CashRegister) *ShardedCashRegister {
	t.Helper()
	s, err := NewShardedCashRegister(p, fresh)
	if err != nil {
		t.Fatalf("NewShardedCashRegister(%d, …): %v", p, err)
	}
	return s
}

// mustShardedTurn is the turnstile counterpart of mustShardedCash.
func mustShardedTurn(t testing.TB, p int, fresh func() Turnstile) *ShardedTurnstile {
	t.Helper()
	s, err := NewShardedTurnstile(p, fresh)
	if err != nil {
		t.Fatalf("NewShardedTurnstile(%d, …): %v", p, err)
	}
	return s
}

// shardedCashCases covers all three combination strategies: mergeable
// buffer families (kll, random, mrl99, qdigest) and the GK rank-descent
// fallback (gkarray, gkadaptive).
var shardedCashCases = []struct {
	name  string
	eps   float64
	fresh func() CashRegister
}{
	{"gkarray", 0.01, func() CashRegister { return NewGKArray(0.01) }},
	{"gkadaptive", 0.01, func() CashRegister { return NewGKAdaptive(0.01) }},
	{"qdigest", 0.01, func() CashRegister { return NewQDigest(0.01, 16) }},
	{"mrl99", 0.01, func() CashRegister { return NewMRL99(0.01, 7) }},
	{"random", 0.01, func() CashRegister { return NewRandom(0.01, 7) }},
	{"kll", 0.01, func() CashRegister { return NewKLL(0.01, 7) }},
}

func TestShardedCashRegisterWithinEps(t *testing.T) {
	data := batchTestData(30000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, tc := range shardedCashCases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustShardedCash(t, 4, tc.fresh)
			feedBatches(s.UpdateBatch, data)
			if s.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d", s.Count(), len(data))
			}
			if err := s.Invariants(); err != nil {
				t.Fatalf("shard invariants: %v", err)
			}
			// The randomized families hold ε with constant probability per
			// query; at these sizes the observed error is far below ε, so a
			// 2εn tolerance keeps the test deterministic-tight without
			// flaking (seeds are fixed anyway).
			tol := int64(2 * tc.eps * float64(len(data)))
			phis := EvenPhis(0.1)
			for _, phi := range phis {
				rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
			}
			for i, q := range s.QuantileBatch(phis) {
				rankWithinEps(t, sorted, phis[i], q, tol)
			}
		})
	}
}

func TestShardedTurnstileWithinEps(t *testing.T) {
	data := batchTestData(30000)
	var dels []uint64
	for i := 0; i < len(data); i += 3 {
		dels = append(dels, data[i])
	}
	remaining := make(map[uint64]int)
	for _, x := range data {
		remaining[x]++
	}
	for _, x := range dels {
		remaining[x]--
	}
	var sorted []uint64
	for x, c := range remaining {
		for ; c > 0; c-- {
			sorted = append(sorted, x)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, tc := range []struct {
		name  string
		fresh func() Turnstile
	}{
		{"dcm", func() Turnstile { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) }},
		{"dcs", func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustShardedTurn(t, 4, tc.fresh)
			feedBatches(s.InsertBatch, data)
			feedBatches(s.DeleteBatch, dels)
			if s.Count() != int64(len(sorted)) {
				t.Fatalf("count %d, want %d", s.Count(), len(sorted))
			}
			if err := s.Invariants(); err != nil {
				t.Fatalf("shard invariants: %v", err)
			}
			tol := int64(2 * 0.05 * float64(len(sorted)))
			for _, phi := range EvenPhis(0.2) {
				rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
			}
		})
	}
}

// TestShardedTurnstileMergesExactly: identically seeded dyadic shards
// are linear, so the combined query path must agree exactly with one
// unsharded sketch fed the same stream.
func TestShardedTurnstileMergesExactly(t *testing.T) {
	data := batchTestData(20000)
	ref := NewDCS(0.05, 16, DyadicConfig{Seed: 7})
	for _, x := range data {
		ref.Insert(x)
	}
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	feedBatches(s.InsertBatch, data)
	for _, phi := range EvenPhis(0.2) {
		if r, g := ref.Quantile(phi), s.Quantile(phi); r != g {
			t.Errorf("Quantile(%v) = %d, unsharded %d", phi, g, r)
		}
	}
	for probe := uint64(0); probe < 1<<16; probe += 1009 {
		if r, g := ref.Rank(probe), s.Rank(probe); r != g {
			t.Errorf("Rank(%d) = %d, unsharded %d", probe, g, r)
		}
	}
}

// TestShardedConcurrentWriters drives W goroutines of batched writers
// into one sharded summary — the production ingestion shape — and
// checks count, invariants and the ε contract afterwards. Run with
// -race this is the data-race proof for the lock-per-shard design.
func TestShardedConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 5000
	data := batchTestData(writers * perWriter)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	s := mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.01) })
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			feedBatches(s.UpdateBatch, part)
		}(data[w*perWriter : (w+1)*perWriter])
	}
	wg.Wait()
	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	if err := s.Invariants(); err != nil {
		t.Fatalf("shard invariants: %v", err)
	}
	// GK's midpoint rank estimator is uncertain by up to the capacity of
	// the gap a probe falls into — ⌊2εᵢnᵢ⌋ per shard — so the additive
	// combination guarantees 2εn (plus per-shard integer rounding).
	tol := int64(2*0.01*float64(len(data))) + int64(s.Shards())
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}

// TestShardedTurnstileConcurrent mixes concurrent batched inserters and
// deleters (deleting only elements their own goroutine inserted first,
// staying strict-turnstile globally) with concurrent queriers.
func TestShardedTurnstileConcurrent(t *testing.T) {
	const writers, perWriter = 4, 4000
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			part := make([]uint64, perWriter)
			for i := range part {
				part[i] = (uint64(seed*perWriter+i) * 2654435761) % (1 << 16)
			}
			feedBatches(s.InsertBatch, part)
			feedBatches(s.DeleteBatch, part[:perWriter/2])
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Count()
			_ = s.Rank(uint64(i * 100))
		}
	}()
	wg.Wait()
	want := int64(writers * perWriter / 2)
	if s.Count() != want {
		t.Fatalf("count %d, want %d", s.Count(), want)
	}
	if err := s.Invariants(); err != nil {
		t.Fatalf("shard invariants: %v", err)
	}
}

// TestSafeWrapperBatchPaths exercises the batch-aware Safe locking:
// concurrent UpdateBatch callers on one SafeCashRegister, and the
// turnstile wrapper's insert/delete batches, with queries interleaved.
func TestSafeWrapperBatchPaths(t *testing.T) {
	const writers, perWriter = 4, 5000
	data := batchTestData(writers * perWriter)
	c := NewSafeCashRegister(NewGKArray(0.01))
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			feedBatches(c.UpdateBatch, part)
		}(data[w*perWriter : (w+1)*perWriter])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if c.Count() > 0 {
				_ = c.Quantile(0.5)
			}
		}
	}()
	wg.Wait()
	if c.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", c.Count(), len(data))
	}

	tu := NewSafeTurnstile(NewDCS(0.05, 16, DyadicConfig{Seed: 7}))
	wg.Add(2)
	go func() {
		defer wg.Done()
		feedBatches(tu.InsertBatch, data)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tu.Count()
		}
	}()
	wg.Wait()
	feedBatches(tu.DeleteBatch, data[:len(data)/2])
	if tu.Count() != int64(len(data)/2) {
		t.Fatalf("turnstile count %d, want %d", tu.Count(), len(data)/2)
	}
}

// TestShardedRankCombination pins the additive-rank estimate itself:
// the summed estimate must be within the composed 2εn bound (GK's
// midpoint estimator is uncertain by the gap capacity ⌊2εᵢnᵢ⌋ per
// shard) of the true rank at every probe, not only at quantile answers.
func TestShardedRankCombination(t *testing.T) {
	data := batchTestData(20000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := mustShardedCash(t, 4, func() CashRegister { return NewGKAdaptive(0.01) })
	feedBatches(s.UpdateBatch, data)
	tol := int64(2*0.01*float64(len(data))) + int64(s.Shards())
	for probe := uint64(0); probe < 1<<16; probe += 499 {
		got := s.Rank(probe)
		below := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= probe }))
		atOrBelow := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe }))
		if got < below-tol || got > atOrBelow+tol {
			t.Fatalf("Rank(%d) = %d, true interval [%d,%d], tol %d", probe, got, below, atOrBelow, tol)
		}
	}
}

// TestShardedValidation pins constructor validation and the empty-query
// contract.
func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedCashRegister(0, func() CashRegister { return NewGKArray(0.1) }); err == nil {
		t.Error("NewShardedCashRegister(0, …) did not error")
	}
	if _, err := NewShardedCashRegister(-3, func() CashRegister { return NewGKArray(0.1) }); err == nil {
		t.Error("NewShardedCashRegister(-3, …) did not error")
	}
	if _, err := NewShardedTurnstile(0, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }); err == nil {
		t.Error("NewShardedTurnstile(0, …) did not error")
	}
	s := mustShardedCash(t, 2, func() CashRegister { return NewGKArray(0.1) })
	if s.Shards() != 2 {
		t.Errorf("Shards() = %d", s.Shards())
	}
	defer func() {
		if r := recover(); r != core.ErrEmpty {
			t.Errorf("empty Quantile panicked with %v, want ErrEmpty", r)
		}
	}()
	_ = s.Quantile(0.5)
}
