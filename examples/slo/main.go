// SLO monitoring with the library's extensions: biased quantiles track
// an error-budget percentile with *relative* precision, and a sliding
// window keeps the view recent — together, "p99.9 over the last hour"
// without storing the hour.
//
// The scenario: a service emits response codes; we track the fraction of
// slow requests (a very low quantile of the "time-to-unhealthy" metric)
// and the live latency distribution over a window. Midway, the service
// degrades; the windowed summary notices, the all-time summary barely
// moves — the motivation for windows.
package main

import (
	"fmt"
	"math"

	sq "streamquantiles"
)

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// latencyMicros draws a lognormal latency; degraded mode doubles the
// median and fattens the tail.
func latencyMicros(r *rng, degraded bool) uint64 {
	u1, u2 := r.float(), r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	mu, sigma := 8.0, 0.5 // e^8 ≈ 3ms
	if degraded {
		mu, sigma = 8.7, 0.8
	}
	us := math.Exp(mu + sigma*z)
	if us > 4e9 {
		us = 4e9
	}
	return uint64(us)
}

func main() {
	const (
		n      = 1_200_000
		window = 200_000
		eps    = 0.005
	)
	// All-time view vs windowed view of the same stream.
	allTime := sq.NewGKArray(eps)
	recent := sq.NewWindowed(eps, window, 1)
	// Biased summary for the extreme tail: relative error means p99.99
	// is as trustworthy as p90.
	tail := sq.NewGKBiased(0.1)

	r := &rng{s: 9}
	for i := 0; i < n; i++ {
		degraded := i >= n*3/4 // the last quarter of traffic is degraded
		v := latencyMicros(r, degraded)
		allTime.Update(v)
		recent.Update(v)
		// Track slow requests from the top: rank of (max − v) is low for
		// slow requests, where the biased summary is sharpest.
		tail.Update(^v)
	}

	fmt.Println("== after degradation (last 25% of traffic) ==")
	fmt.Printf("%-28s %-12s %-12s\n", "", "all-time", fmt.Sprintf("last %d", window))
	for _, phi := range []float64{0.5, 0.99} {
		fmt.Printf("p%-27g %-12d %-12d\n",
			phi*100, allTime.Quantile(phi), recent.Quantile(phi))
	}
	fmt.Println()
	fmt.Println("extreme tail via biased summary (relative error ≤ 10% of rank):")
	for _, phi := range []float64{0.01, 0.001, 0.0001} {
		// φ-quantile of the mirrored stream = (1−φ)-quantile of latency.
		v := ^tail.Quantile(phi)
		fmt.Printf("  p%-8.4g ≈ %d µs\n", (1-phi)*100, v)
	}
	fmt.Printf("\nsummaries: all-time %.1fKB, windowed %.1fKB, tail %.1fKB (raw stream: %.1fMB)\n",
		float64(allTime.SpaceBytes())/1024, float64(recent.SpaceBytes())/1024,
		float64(tail.SpaceBytes())/1024, float64(8*n)/(1<<20))
}
