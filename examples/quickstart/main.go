// Quickstart: summarize a million-element stream with a deterministic
// and a randomized summary, extract quantiles, and compare against the
// exact answers — a one-minute tour of the public API.
package main

import (
	"fmt"
	"slices"

	sq "streamquantiles"
)

func main() {
	const n = 1_000_000
	const eps = 0.001 // rank error guarantee: ±0.1% of n

	// A reproducible pseudo-random stream (no external deps needed).
	data := make([]uint64, n)
	state := uint64(42)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		data[i] = state >> 32 // uniform over [0, 2^32)
	}

	// GKArray: deterministic guarantee, sort/merge speed.
	gk := sq.NewGKArray(eps)
	// Random: the study's best randomized summary, fixed space.
	rnd := sq.NewRandom(eps, 7)
	for _, v := range data {
		gk.Update(v)
		rnd.Update(v)
	}

	// Exact answers for comparison.
	sorted := slices.Clone(data)
	slices.Sort(sorted)

	fmt.Printf("stream: n=%d, ε=%g (rank slack ±%d)\n\n", n, eps, int(eps*n))
	fmt.Printf("%-8s %-14s %-14s %-14s\n", "φ", "exact", "GKArray", "Random")
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		exactQ := sorted[int(phi*float64(n))]
		fmt.Printf("%-8.2f %-14d %-14d %-14d\n", phi, exactQ, gk.Quantile(phi), rnd.Quantile(phi))
	}

	fmt.Printf("\nspace: GKArray %.1f KB, Random %.1f KB (raw data: %.1f MB)\n",
		float64(gk.SpaceBytes())/1024, float64(rnd.SpaceBytes())/1024,
		float64(n*4)/(1<<20))
	fmt.Printf("estimated rank of median element: %d (true %d)\n",
		gk.Rank(sorted[n/2]), n/2)
}
