// Turnstile quantiles over a live flow table: the paper's motivating
// network-monitoring scenario (§1). A router tracks the sizes of
// currently-active flows; flows open (insert) and close (delete), and the
// operator asks for the median and tail of the *active* distribution —
// which only a turnstile summary can answer in small space.
//
// The example drives DCS through churn where the active distribution
// changes completely (small interactive flows drain away, bulk transfers
// remain), then applies the OLS post-processing (Post) and shows it
// tightening the estimates, the headline improvement of the journal
// version of the paper.
package main

import (
	"fmt"
	"slices"
	"sort"

	sq "streamquantiles"
)

const bits = 24 // flow sizes in [0, 16M) bytes

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

// flowSize draws interactive (small) or bulk (large) flow sizes.
func flowSize(r *rng, bulk bool) uint64 {
	if bulk {
		return 1<<20 + r.next()%(1<<23-1<<20) // 1MB – 8MB
	}
	return 100 + r.next()%(64<<10) // 100B – 64KB
}

func percentile(sorted []uint64, phi float64) uint64 {
	return sorted[int(phi*float64(len(sorted)))]
}

func report(label string, s sq.Summary, active []uint64) {
	sorted := slices.Clone(active)
	slices.Sort(sorted)
	fmt.Printf("%s  (active flows: %d)\n", label, len(active))
	fmt.Printf("  %-6s %-12s %-12s %-10s\n", "φ", "exact", "estimate", "rank-err")
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(phi)
		want := percentile(sorted, phi)
		rank := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= got })
		err := float64(rank) - phi*float64(len(sorted))
		if err < 0 {
			err = -err
		}
		fmt.Printf("  %-6.2f %-12d %-12d %-10.5f\n", phi, want, got, err/float64(len(sorted)))
	}
}

func main() {
	const eps = 0.005
	dcs := sq.NewDCS(eps, bits, sq.DyadicConfig{Seed: 1})
	r := &rng{s: 7}

	// Phase 1: 200k flows open, 80% interactive, 20% bulk.
	var active []uint64
	for i := 0; i < 200_000; i++ {
		sz := flowSize(r, i%5 == 0)
		active = append(active, sz)
		dcs.Insert(sz)
	}
	fmt.Println("== after ramp-up ==")
	report("DCS", dcs, active)

	// Phase 2: churn — interactive flows close, bulk stays. After this
	// the distribution of *active* flows is unrecognizable from phase 1;
	// a cash-register summary would still be dominated by closed flows.
	survivors := active[:0]
	for _, sz := range active {
		if sz < 1<<20 {
			dcs.Delete(sz)
		} else {
			survivors = append(survivors, sz)
		}
	}
	active = survivors
	fmt.Printf("\n== after churn: %d flows remain (bulk only) ==\n", len(active))
	report("DCS", dcs, active)

	// Post-processing: same sketch, better estimates at query time.
	post := sq.PostProcess(dcs, 0) // η = 0.1, the paper's sweet spot
	report("DCS+Post", post, active)
	fmt.Printf("\ntruncated tree: %d nodes; sketch: %.1f KB\n",
		post.TreeNodes(), float64(dcs.SpaceBytes())/1024)
}
