// Latency percentiles: the workload that motivates streaming quantiles in
// production monitoring. A service's request latencies (float64
// milliseconds, heavy-tailed with periodic slowdowns) arrive one by one;
// the dashboard needs live p50/p90/p99/p999 without storing the stream.
//
// The example uses the FloatCashRegister adapter over GKArray — latency
// SLOs want the deterministic guarantee — and shows the summary staying
// thousands of times smaller than the raw data while every percentile
// lands within the ε rank slack.
package main

import (
	"fmt"
	"math"
	"sort"

	sq "streamquantiles"
)

// latencyModel produces a realistic latency: lognormal body, occasional
// GC-style spikes, and a slow drift across the day.
type latencyModel struct{ state uint64 }

func (m *latencyModel) next(i int) float64 {
	f := func() float64 {
		m.state = m.state*6364136223846793005 + 1442695040888963407
		return float64(m.state>>11) / (1 << 53)
	}
	u1, u2 := f(), f()
	for u1 == 0 {
		u1 = f()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	ms := math.Exp(1.2 + 0.6*z) // lognormal body, median ≈ 3.3ms
	ms *= 1 + 0.3*math.Sin(float64(i)/200000)
	if f() < 0.001 { // 0.1% of requests hit a stall
		ms += 50 + 200*f()
	}
	return ms
}

func main() {
	const n = 2_000_000
	const eps = 0.0005 // ±0.05% rank error: p999 is still meaningful

	summary := sq.FloatCashRegister{S: sq.NewGKArray(eps)}
	model := &latencyModel{state: 1}

	all := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ms := model.next(i)
		summary.Update(ms)
		all = append(all, ms) // kept only to show the exact answers
	}
	sort.Float64s(all)

	fmt.Printf("requests: %d   summary: %.1f KB   raw: %.1f MB\n\n",
		summary.Count(), float64(summary.SpaceBytes())/1024, float64(8*n)/(1<<20))
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "pct", "exact(ms)", "summary(ms)", "rank-err")
	for _, phi := range []float64{0.50, 0.90, 0.99, 0.999} {
		got := summary.Quantile(phi)
		want := all[int(phi*float64(n))]
		// Observed rank error of the reported value.
		rank := sort.SearchFloat64s(all, got)
		err := math.Abs(float64(rank)-phi*float64(n)) / float64(n)
		fmt.Printf("p%-7g %-12.3f %-12.3f %-10.5f\n", phi*100, want, got, err)
		if err > eps {
			fmt.Printf("  !! rank error above ε = %g\n", eps)
		}
	}
	fmt.Printf("\nguarantee: every percentile within ±%g of its rank, deterministically\n", eps)
}
