// Mergeable summaries across a sensor network: the application q-digest
// was designed for (Shrivastava et al., SenSys 2004). Sixteen sensor
// nodes each summarize their local temperature readings; summaries are
// merged pairwise up an aggregation tree — in arbitrary order, without
// re-reading any raw data — and the base station extracts quantiles of
// the union.
//
// The example aggregates both q-digest (deterministic, the only
// deterministic mergeable summary in the study) and Random (randomized,
// mergeable in the Agarwal et al. sense) and compares against the exact
// union.
package main

import (
	"fmt"
	"slices"

	sq "streamquantiles"
)

const (
	sensors = 16
	perNode = 50_000
	bits    = 16 // readings quantized to [0, 65536)
	eps     = 0.01
)

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

// reading simulates one quantized temperature: each sensor has its own
// micro-climate offset plus shared diurnal structure.
func reading(r *rng, node, i int) uint64 {
	base := 20000 + 3000*node // per-node offset
	diurnal := int(6000 * (float64(i%10000) / 10000))
	noise := int(r.next() % 2000)
	v := base + diurnal + noise
	if v < 0 {
		v = 0
	}
	if v >= 1<<bits {
		v = 1<<bits - 1
	}
	return uint64(v)
}

func main() {
	var (
		digests []*sq.QDigest
		randoms []*sq.Random
		union   []uint64
	)
	for node := 0; node < sensors; node++ {
		d := sq.NewQDigest(eps, bits)
		rd := sq.NewRandom(eps, uint64(100+node))
		r := &rng{s: uint64(1 + node)}
		for i := 0; i < perNode; i++ {
			v := reading(r, node, i)
			d.Update(v)
			rd.Update(v)
			union = append(union, v)
		}
		digests = append(digests, d)
		randoms = append(randoms, rd)
	}

	// Pairwise tree aggregation, as in-network aggregation would do.
	for len(digests) > 1 {
		var nd []*sq.QDigest
		var nr []*sq.Random
		for i := 0; i+1 < len(digests); i += 2 {
			digests[i].Merge(digests[i+1])
			randoms[i].Merge(randoms[i+1])
			nd = append(nd, digests[i])
			nr = append(nr, randoms[i])
		}
		digests, randoms = nd, nr
	}
	qd, rd := digests[0], randoms[0]

	slices.Sort(union)
	n := len(union)
	fmt.Printf("union of %d sensors × %d readings = %d values\n", sensors, perNode, n)
	fmt.Printf("merged q-digest: %.1f KB (%d nodes)   merged Random: %.1f KB\n\n",
		float64(qd.SpaceBytes())/1024, qd.NodeCount(), float64(rd.SpaceBytes())/1024)

	fmt.Printf("%-6s %-10s %-10s %-10s\n", "φ", "exact", "q-digest", "Random")
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		fmt.Printf("%-6.2f %-10d %-10d %-10d\n",
			phi, union[int(phi*float64(n))], qd.Quantile(phi), rd.Quantile(phi))
	}
	if qd.Count() != int64(n) || rd.Count() != int64(n) {
		fmt.Println("!! merged counts disagree with union size")
	}
}
