package streamquantiles

import (
	"sort"
	"testing"
)

func loaded(t *testing.T) CashRegister {
	t.Helper()
	s := NewGKArray(0.005)
	for i := 0; i < 100000; i++ {
		s.Update(uint64(i % 1000)) // uniform over 0..999
	}
	return s
}

func TestCDFShape(t *testing.T) {
	s := loaded(t)
	pts := CDF(s, 99)
	if len(pts) != 99 {
		t.Fatalf("%d points", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) &&
		!valuesNonDecreasing(pts) {
		t.Fatal("CDF values not monotone")
	}
	// Uniform over 0..999: value at fraction f should be ≈ 1000f.
	for _, p := range pts {
		want := 1000 * p.Fraction
		if float64(p.Value) < want-25 || float64(p.Value) > want+25 {
			t.Errorf("CDF(%v) = %d, want ≈ %v", p.Fraction, p.Value, want)
		}
	}
}

func valuesNonDecreasing(pts []CDFPoint) bool {
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			return false
		}
	}
	return true
}

func TestCDFFractionsSpanOpenInterval(t *testing.T) {
	s := loaded(t)
	pts := CDF(s, 3)
	want := []float64{0.25, 0.5, 0.75}
	for i, p := range pts {
		if diff := p.Fraction - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("fraction[%d] = %v, want %v", i, p.Fraction, want[i])
		}
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	s := loaded(t)
	bounds := Histogram(s, 10)
	if len(bounds) != 9 {
		t.Fatalf("%d bounds for 10 buckets", len(bounds))
	}
	for i, b := range bounds {
		want := float64(100 * (i + 1))
		if float64(b) < want-25 || float64(b) > want+25 {
			t.Errorf("bound[%d] = %d, want ≈ %v", i, b, want)
		}
	}
}

func TestCDFPanics(t *testing.T) {
	s := loaded(t)
	for _, bad := range []func(){
		func() { CDF(s, 0) },
		func() { Histogram(s, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid argument did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestCDFOnTurnstile(t *testing.T) {
	s := NewDCS(0.01, 12, DyadicConfig{Seed: 1})
	for i := 0; i < 50000; i++ {
		s.Insert(uint64(i % 4096))
	}
	pts := CDF(s, 15)
	if !valuesNonDecreasing(pts) {
		t.Fatal("turnstile CDF not monotone")
	}
	mid := pts[7] // fraction 0.5
	if float64(mid.Value) < 1800 || float64(mid.Value) > 2300 {
		t.Errorf("median point %d, want ≈ 2048", mid.Value)
	}
}
