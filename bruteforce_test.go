package streamquantiles

import (
	"slices"
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/invariant"
	"streamquantiles/internal/xhash"
)

// TestBruteForceSmallStreams drives every algorithm with thousands of
// tiny random streams and verifies the guarantee against a brute-force
// oracle — the kind of exhaustive net that catches off-by-one rank
// handling that large-stream statistics hide.
func TestBruteForceSmallStreams(t *testing.T) {
	const eps = 0.26 // coarse: summaries stay tiny, edge paths dominate
	const bits = 4   // universe {0..15}
	rng := xhash.NewSplitMix64(2024)

	mk := func() map[string]CashRegister {
		return map[string]CashRegister{
			"GKAdaptive":  NewGKAdaptive(eps),
			"GKTheory":    NewGKTheory(eps),
			"GKArray":     NewGKArray(eps),
			"FastQDigest": NewQDigest(eps, bits),
			"MRL99":       NewMRL99(eps, rng.Next()),
			"Random":      NewRandom(eps, rng.Next()),
			"GKBiased":    NewGKBiased(eps),
		}
	}

	for trial := 0; trial < 400; trial++ {
		n := 1 + int(rng.Uint64n(24))
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Uint64n(1 << bits)
		}
		oracle := exact.New(data)
		summaries := mk()
		ck := invariant.Every(4) // deep sanitizer, active under -tags sqcheck
		for _, x := range data {
			for name, s := range summaries {
				s.Update(x)
				if err := ck.Check(s.(Checkable)); err != nil {
					t.Fatalf("trial %d %s: %v", trial, name, err)
				}
			}
		}
		for name, s := range summaries {
			if s.Count() != int64(n) {
				t.Fatalf("trial %d %s: count %d, want %d", trial, name, s.Count(), n)
			}
			if err := CheckInvariants(s.(Checkable)); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			for _, phi := range []float64{0.01, 0.3, 0.5, 0.7, 0.99} {
				got := s.Quantile(phi)
				err := oracle.QuantileError(got, phi)
				// Deterministic guarantee plus one rank of definitional
				// slack for the tiny-n rounding differences; the biased
				// summary's guarantee at small φ is ε·φn, necessarily
				// within ε·n as well. The randomized summaries hold the
				// stream exactly at these sizes.
				if err > eps+1.0/float64(n)+1e-9 {
					t.Errorf("trial %d %s: phi=%v err=%v n=%d data=%v got=%d",
						trial, name, phi, err, n, data, got)
				}
			}
		}
	}
}

// TestBruteForceTurnstile does the same for DCM/DCS with random
// insert/delete interleavings, checking against the live multiset.
func TestBruteForceTurnstile(t *testing.T) {
	const eps = 0.26
	const bits = 4
	rng := xhash.NewSplitMix64(2025)

	for trial := 0; trial < 150; trial++ {
		dcm := NewDCM(eps, bits, DyadicConfig{Seed: rng.Next()})
		dcs := NewDCS(eps, bits, DyadicConfig{Seed: rng.Next()})
		var live []uint64
		ops := 1 + int(rng.Uint64n(40))
		for op := 0; op < ops; op++ {
			if len(live) > 0 && rng.Uint64n(3) == 0 {
				i := int(rng.Uint64n(uint64(len(live))))
				x := live[i]
				live = append(live[:i], live[i+1:]...)
				dcm.Delete(x)
				dcs.Delete(x)
			} else {
				x := rng.Uint64n(1 << bits)
				live = append(live, x)
				dcm.Insert(x)
				dcs.Insert(x)
			}
		}
		if dcm.Count() != int64(len(live)) || dcs.Count() != int64(len(live)) {
			t.Fatalf("trial %d: counts %d/%d, want %d", trial, dcm.Count(), dcs.Count(), len(live))
		}
		for name, s := range map[string]Checkable{"DCM": dcm, "DCS": dcs} {
			if err := CheckInvariants(s); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
		}
		if len(live) == 0 {
			continue
		}
		sorted := slices.Clone(live)
		slices.Sort(sorted)
		oracle := exact.New(sorted)
		for name, s := range map[string]Turnstile{"DCM": dcm, "DCS": dcs} {
			for _, phi := range []float64{0.2, 0.5, 0.8} {
				got := s.Quantile(phi)
				if err := oracle.QuantileError(got, phi); err > eps+1.0/float64(len(live))+1e-9 {
					t.Errorf("trial %d %s: phi=%v err=%v live=%v got=%d",
						trial, name, phi, err, sorted, got)
				}
			}
		}
	}
}
