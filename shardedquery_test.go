package streamquantiles

import (
	"sort"
	"sync/atomic"
	"testing"

	"streamquantiles/internal/core"
)

// Sharded query-path properties: the construction-time mergeability
// probe, the epoch-keyed fold cache, the parallel tree-merge's
// equivalence to a sequential fold, and the 2εn+P combined-rank bound
// of the GK additive combination.

// TestShardedMergeableProbe pins the construction-time capability
// probe: a merge-compatible factory folds, a factory whose instances
// cannot merge (here: differing ε per call) is detected up front, and
// a non-Mergeable family never claims to fold.
func TestShardedMergeableProbe(t *testing.T) {
	same := mustShardedCash(t, 2, func() CashRegister { return NewKLL(0.01, 7) })
	if !same.Mergeable() {
		t.Error("identically configured KLL factory: Mergeable() = false, want true")
	}
	var n atomic.Int64
	drift := mustShardedCash(t, 2, func() CashRegister {
		return NewKLL(0.01/float64(n.Add(1)), 7)
	})
	if drift.Mergeable() {
		t.Error("eps-drifting KLL factory: Mergeable() = true, want false (instances cannot merge)")
	}
	gk := mustShardedCash(t, 2, func() CashRegister { return NewGKArray(0.01) })
	if gk.Mergeable() {
		t.Error("GKArray is not Mergeable, but the probe claims it folds")
	}
	// The drifting factory must still answer (per-shard snapshots
	// combined by additive rank), just without the merged fast path.
	data := batchTestData(4000)
	feedBatches(drift.UpdateBatch, data)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rankWithinEps(t, sorted, 0.5, drift.Quantile(0.5), int64(2*0.01*float64(len(data)))+2)
}

// TestShardedFoldCacheReuse counts factory invocations to pin the
// epoch cache's contract: folding a mergeable family costs one fresh
// summary per shard per *write generation*, never per query — and the
// snapshot combination of non-mergeable families costs none at all.
func TestShardedFoldCacheReuse(t *testing.T) {
	const p = 4
	data := batchTestData(20000)
	phis := EvenPhis(0.1)

	t.Run("mergeable", func(t *testing.T) {
		var calls atomic.Int64
		s := mustShardedCash(t, p, func() CashRegister {
			calls.Add(1)
			return NewKLL(0.01, 7)
		})
		base := calls.Load()
		if base != p+2 {
			t.Fatalf("construction used %d fresh summaries, want %d (P shards + 2 probe throwaways)", base, p+2)
		}
		feedBatches(s.UpdateBatch, data)
		s.Quantile(0.5) // first query folds: one fresh partial per shard
		afterFold := calls.Load()
		if afterFold != base+p {
			t.Fatalf("first query used %d fresh summaries, want %d (one per shard)", afterFold-base, p)
		}
		s.Quantile(0.9)
		s.QuantileBatch(phis)
		s.Rank(data[0])
		s.RankBatch(data[:8])
		if got := calls.Load(); got != afterFold {
			t.Errorf("%d fresh summaries built by queries on a quiet summary, want 0 (cache hit)", got-afterFold)
		}
		s.Update(data[0]) // retire the fold
		s.Quantile(0.5)
		if got := calls.Load(); got != afterFold+p {
			t.Errorf("query after a write used %d fresh summaries, want %d (one re-fold)", got-afterFold, p)
		}
	})

	t.Run("snapshots", func(t *testing.T) {
		var calls atomic.Int64
		s := mustShardedCash(t, p, func() CashRegister {
			calls.Add(1)
			return NewGKArray(0.01)
		})
		base := calls.Load()
		feedBatches(s.UpdateBatch, data)
		s.Quantile(0.5)
		s.QuantileBatch(phis)
		s.Update(data[0])
		s.Quantile(0.5)
		if got := calls.Load(); got != base {
			t.Errorf("snapshot combination built %d fresh summaries, want 0", got-base)
		}
	})
}

// TestShardedParallelMergeMatchesManualFold replays the fold by hand —
// one fresh summary per shard fed that shard's exact round-robin
// share, reduced in the same pairwise tree order — and requires the
// sharded summary's cached-fold answers to match exactly. With P=1
// this also pins the degenerate case: a single-shard summary answers
// exactly like its unsharded twin.
func TestShardedParallelMergeMatchesManualFold(t *testing.T) {
	const p, chunk = 4, 1000
	data := batchTestData(24000)
	phis := EvenPhis(0.05)

	s := mustShardedCash(t, p, func() CashRegister { return NewKLL(0.01, 7) })
	shards := make([]*KLL, p)
	for i := range shards {
		shards[i] = NewKLL(0.01, 7)
	}
	for j, i := 0, 0; i < len(data); j, i = j+1, i+chunk {
		end := min(i+chunk, len(data))
		s.UpdateBatch(data[i:end])           // round-robin: chunk j -> shard j%p
		shards[j%p].UpdateBatch(data[i:end]) // same partition, by hand
	}
	// Replicate rebuildCombined: merge each shard into its own fresh
	// summary, then reduce pairwise with stride doubling.
	parts := make([]core.Summary, p)
	for i, sh := range shards {
		m := NewKLL(0.01, 7)
		if err := m.MergeSummary(sh); err != nil {
			t.Fatal(err)
		}
		parts[i] = m
	}
	for stride := 1; stride < p; stride *= 2 {
		for i := 0; i+stride < p; i += 2 * stride {
			if err := parts[i].(core.Mergeable).MergeSummary(parts[i+stride]); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := QuantileBatch(parts[0], phis)
	for i, q := range s.QuantileBatch(phis) {
		if q != want[i] {
			t.Errorf("sharded fold Quantile(%v) = %d, manual fold = %d", phis[i], q, want[i])
		}
	}

	single := mustShardedCash(t, 1, func() CashRegister { return NewKLL(0.01, 7) })
	twin := NewKLL(0.01, 7)
	feedBatches(single.UpdateBatch, data)
	feedBatches(twin.UpdateBatch, data)
	fold := NewKLL(0.01, 7)
	if err := fold.MergeSummary(twin); err != nil {
		t.Fatal(err)
	}
	want = QuantileBatch(fold, phis)
	for i, q := range single.QuantileBatch(phis) {
		if q != want[i] {
			t.Errorf("P=1 sharded Quantile(%v) = %d, merged twin = %d", phis[i], q, want[i])
		}
	}
}

// TestShardedGKCombinedRankBound measures the additive GK combination
// against the documented bound: the summed rank estimate differs from
// the true combined rank by at most 2εn+P, and every quantile answer's
// rank error stays within the same bound (versus εn unsharded).
func TestShardedGKCombinedRankBound(t *testing.T) {
	const p = 4
	eps := 0.01
	data := batchTestData(30000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := mustShardedCash(t, p, func() CashRegister { return NewGKArray(eps) })
	feedBatches(s.UpdateBatch, data)
	tol := int64(2*eps*float64(len(data))) + p

	var probes []uint64
	for x := uint64(0); x < 1<<16; x += 131 {
		probes = append(probes, x)
	}
	rs := s.RankBatch(probes)
	for i, x := range probes {
		truth := int64(sort.Search(len(sorted), func(j int) bool { return sorted[j] >= x }))
		if d := rs[i] - truth; d > tol || d < -tol {
			t.Errorf("Rank(%d) = %d, true strict rank %d: error %d exceeds 2εn+P = %d", x, rs[i], truth, d, tol)
		}
	}
	for _, phi := range EvenPhis(0.02) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}
