package streamquantiles

import "math"

// The summaries operate on uint64 keys ordered as unsigned integers.
// The functions below are order-preserving bijections between common
// element types and that key space, implementing the paper's observation
// (§1.1, footnote 1) that IEEE 754 floating-point values map to a fixed
// integer universe in an order-preserving fashion. They let the
// fixed-universe and comparison-based algorithms alike summarize floats
// and signed integers without any change.

// Float64Key maps a float64 to a uint64 such that
// a < b ⇔ Float64Key(a) < Float64Key(b) for all non-NaN a, b
// (−Inf and +Inf included; −0 and +0 map to adjacent keys with −0 first).
// NaN maps above +Inf.
func Float64Key(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b // negative: flip all bits to reverse order
	}
	return b | 1<<63 // positive: set the sign bit to move above negatives
}

// KeyFloat64 inverts Float64Key.
func KeyFloat64(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// Int64Key maps an int64 to a uint64 preserving order.
func Int64Key(i int64) uint64 {
	return uint64(i) ^ (1 << 63)
}

// KeyInt64 inverts Int64Key.
func KeyInt64(k uint64) int64 {
	return int64(k ^ (1 << 63))
}

// FloatCashRegister adapts any CashRegister to float64 elements through
// the order-preserving key mapping. Quantile answers are exact images of
// the underlying summary's answers, so all accuracy guarantees carry over.
type FloatCashRegister struct {
	// S is the underlying summary, e.g. NewGKArray(eps).
	S CashRegister
}

// Update observes one float64 element (NaN is rejected with a panic:
// NaN has no rank).
func (f FloatCashRegister) Update(v float64) {
	if math.IsNaN(v) {
		panic("streamquantiles: cannot rank NaN")
	}
	f.S.Update(Float64Key(v))
}

// Quantile returns an estimated φ-quantile as a float64.
func (f FloatCashRegister) Quantile(phi float64) float64 {
	return KeyFloat64(f.S.Quantile(phi))
}

// Rank returns the estimated number of elements smaller than v.
func (f FloatCashRegister) Rank(v float64) int64 {
	return f.S.Rank(Float64Key(v))
}

// Count reports the number of observed elements.
func (f FloatCashRegister) Count() int64 { return f.S.Count() }

// SpaceBytes reports the underlying summary's size.
func (f FloatCashRegister) SpaceBytes() int64 { return f.S.SpaceBytes() }
