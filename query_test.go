package streamquantiles

import (
	"sort"
	"testing"

	"streamquantiles/internal/core"
)

// Query-path properties: the single-pass batch extraction and the
// epoch-cached snapshots are pure read-path optimizations, so they must
// be answer-preserving — QuantileBatch agrees with a per-φ Quantile
// loop element for element on every registered summary (including
// through the Safe* wrappers, whose snapshot path must also reflect
// every write), and the sharded fold cache must never serve a stale
// combined view.

// queryEquivCases builds every roster summary pre-loaded with the test
// stream, including Safe-wrapped and sharded configurations, so the
// batch ≡ per-φ property is pinned across all three dispatch layers
// (native batch sweep, snapshot path, cached shard fold).
var queryEquivCases = []struct {
	name  string
	build func(data []uint64) Summary
}{
	{"gkadaptive", func(data []uint64) Summary { s := NewGKAdaptive(0.01); feedBatches(s.UpdateBatch, data); return s }},
	{"gktheory", func(data []uint64) Summary { s := NewGKTheory(0.01); feedBatches(s.UpdateBatch, data); return s }},
	{"gkarray", func(data []uint64) Summary { s := NewGKArray(0.01); feedBatches(s.UpdateBatch, data); return s }},
	{"gkbiased", func(data []uint64) Summary { s := NewGKBiased(0.01); feedBatches(s.UpdateBatch, data); return s }},
	{"qdigest", func(data []uint64) Summary { s := NewQDigest(0.01, 16); feedBatches(s.UpdateBatch, data); return s }},
	{"mrl99", func(data []uint64) Summary { s := NewMRL99(0.01, 7); feedBatches(s.UpdateBatch, data); return s }},
	{"random", func(data []uint64) Summary { s := NewRandom(0.01, 7); feedBatches(s.UpdateBatch, data); return s }},
	{"kll", func(data []uint64) Summary { s := NewKLL(0.01, 7); feedBatches(s.UpdateBatch, data); return s }},
	{"dcm", func(data []uint64) Summary {
		s := NewDCM(0.05, 16, DyadicConfig{Seed: 7})
		feedBatches(s.InsertBatch, data)
		return s
	}},
	{"dcs", func(data []uint64) Summary {
		s := NewDCS(0.05, 16, DyadicConfig{Seed: 7})
		feedBatches(s.InsertBatch, data)
		return s
	}},
	{"drss", func(data []uint64) Summary {
		s := NewDRSS(0.05, 16, DyadicConfig{Seed: 7})
		feedBatches(s.InsertBatch, data)
		return s
	}},
	{"safe/gkarray", func(data []uint64) Summary {
		s := NewSafeCashRegister(NewGKArray(0.01))
		feedBatches(s.UpdateBatch, data)
		return s
	}},
	{"safe/kll", func(data []uint64) Summary {
		s := NewSafeCashRegister(NewKLL(0.01, 7))
		feedBatches(s.UpdateBatch, data)
		return s
	}},
	{"safe/dcs", func(data []uint64) Summary {
		s := NewSafeTurnstile(NewDCS(0.05, 16, DyadicConfig{Seed: 7}))
		feedBatches(s.InsertBatch, data)
		return s
	}},
	{"sharded/gkarray", func(data []uint64) Summary {
		s, err := NewShardedCashRegister(4, func() CashRegister { return NewGKArray(0.01) })
		if err != nil {
			panic(err)
		}
		feedBatches(s.UpdateBatch, data)
		return s
	}},
	{"sharded/kll", func(data []uint64) Summary {
		s, err := NewShardedCashRegister(4, func() CashRegister { return NewKLL(0.01, 7) })
		if err != nil {
			panic(err)
		}
		feedBatches(s.UpdateBatch, data)
		return s
	}},
	{"sharded/dcs", func(data []uint64) Summary {
		s, err := NewShardedTurnstile(4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
		if err != nil {
			panic(err)
		}
		feedBatches(s.InsertBatch, data)
		return s
	}},
}

// TestQuantileBatchMatchesPerPhi pins batch extraction to the per-φ
// loop, value for value: the batch paths are sweeps over the same
// state, never different estimators.
func TestQuantileBatchMatchesPerPhi(t *testing.T) {
	data := batchTestData(30000)
	phis := append(EvenPhis(0.02), 0.001, 0.5, 0.999)
	sort.Float64s(phis)
	for _, tc := range queryEquivCases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(data)
			want := make([]uint64, len(phis))
			for i, phi := range phis {
				want[i] = s.Quantile(phi)
			}
			got := QuantileBatch(s, phis)
			for i := range phis {
				if got[i] != want[i] {
					t.Errorf("QuantileBatch[%d] (phi=%v) = %d, per-phi Quantile = %d", i, phis[i], got[i], want[i])
				}
			}
			// Quantiles is the same dispatch under the historical name.
			for i, q := range Quantiles(s, phis) {
				if q != want[i] {
					t.Errorf("Quantiles[%d] = %d, want %d", i, q, want[i])
				}
			}
		})
	}
}

// TestRankBatchMatchesPerProbe is the rank-side twin, with an unsorted
// probe set to exercise the sort-and-restore order bookkeeping.
func TestRankBatchMatchesPerProbe(t *testing.T) {
	data := batchTestData(30000)
	var probes []uint64
	for x := uint64(0); x < 1<<16; x += 509 {
		probes = append(probes, x)
	}
	// Deliberately unsorted, with duplicates.
	for i, j := 0, len(probes)-1; i < j; i, j = i+2, j-1 {
		probes[i], probes[j] = probes[j], probes[i]
	}
	probes = append(probes, probes[0], probes[len(probes)/2])
	for _, tc := range queryEquivCases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(data)
			want := make([]int64, len(probes))
			for i, x := range probes {
				want[i] = s.Rank(x)
			}
			for i, r := range RankBatch(s, probes) {
				if r != want[i] {
					t.Errorf("RankBatch[%d] (x=%d) = %d, per-probe Rank = %d", i, probes[i], r, want[i])
				}
			}
		})
	}
}

// TestSafeSnapshotReflectsWrites pins the epoch protocol end to end: a
// query builds the wrapper's cached snapshot, a write must retire it,
// and the next query must answer exactly as an identically-fed live
// summary — a stale snapshot would freeze the first half's answers.
func TestSafeSnapshotReflectsWrites(t *testing.T) {
	data := batchTestData(30000)
	half := len(data) / 2
	phis := EvenPhis(0.05)

	t.Run("cash", func(t *testing.T) {
		safe := NewSafeCashRegister(NewGKArray(0.01))
		ref := NewGKArray(0.01)
		safe.UpdateBatch(data[:half])
		ref.UpdateBatch(data[:half])
		firstHalf := safe.Quantiles(phis) // builds the snapshot
		Quantiles(ref, phis)              // GKArray queries flush its buffer: keep the schedules aligned
		// Shift the second half above the first's universe so the writes
		// provably move the upper quantiles.
		shifted := make([]uint64, len(data)-half)
		for i, x := range data[half:] {
			shifted[i] = x + 1<<20
		}
		safe.UpdateBatch(shifted)
		ref.UpdateBatch(shifted)
		stale := false
		for i, phi := range phis {
			want := ref.Quantile(phi)
			if got := safe.Quantile(phi); got != want {
				t.Errorf("Quantile(%v) = %d after write, live summary says %d", phi, got, want)
			}
			if firstHalf[i] != want {
				stale = true // the write genuinely changed this answer
			}
		}
		if !stale {
			t.Fatal("test stream too tame: second half changed no answer, staleness would be invisible")
		}
	})

	t.Run("turnstile", func(t *testing.T) {
		safe := NewSafeTurnstile(NewDCS(0.05, 16, DyadicConfig{Seed: 7}))
		ref := NewDCS(0.05, 16, DyadicConfig{Seed: 7})
		safe.InsertBatch(data)
		ref.InsertBatch(data)
		before := safe.Quantiles(phis)
		var dels []uint64
		for i := 0; i < half; i += 2 {
			dels = append(dels, data[i])
		}
		safe.DeleteBatch(dels)
		ref.DeleteBatch(dels)
		stale := false
		for i, phi := range phis {
			want := ref.Quantile(phi)
			if got := safe.Quantile(phi); got != want {
				t.Errorf("Quantile(%v) = %d after deletes, live summary says %d", phi, got, want)
			}
			if before[i] != want {
				stale = true
			}
		}
		if !stale {
			t.Fatal("deletes changed no answer; staleness would be invisible")
		}
	})
}

// nonMonotoneBatcher fakes a summary whose batch path returns
// non-monotone values — the estimator-noise case CDF's clamp exists
// for. Per-φ queries would sort themselves out; only the batch path
// exercises the clamp.
type nonMonotoneBatcher struct{ vals []uint64 }

func (f *nonMonotoneBatcher) Count() int64              { return int64(len(f.vals)) }
func (f *nonMonotoneBatcher) Rank(x uint64) int64       { return 0 }
func (f *nonMonotoneBatcher) Quantile(p float64) uint64 { return f.vals[0] }
func (f *nonMonotoneBatcher) SpaceBytes() int64         { return 0 }

func (f *nonMonotoneBatcher) QuantileBatch(phis []float64) []uint64 {
	out := make([]uint64, len(phis))
	for i := range out {
		out[i] = f.vals[i%len(f.vals)]
	}
	return out
}

func (f *nonMonotoneBatcher) RankBatch(xs []uint64) []int64 { return make([]int64, len(xs)) }

// TestCDFClampsNonMonotoneBatch is the regression test for CDF's
// monotonicity clamp now that extraction goes through QuantileBatch: a
// batcher returning dips must still yield a non-decreasing CDF.
func TestCDFClampsNonMonotoneBatch(t *testing.T) {
	f := &nonMonotoneBatcher{vals: []uint64{50, 20, 80, 10, 60}}
	var _ core.QuantileBatcher = f // the fake must take the batch path
	pts := CDF(f, 20)
	if len(pts) != 20 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	prev := uint64(0)
	for i, p := range pts {
		if p.Value < prev {
			t.Fatalf("CDF not monotone at point %d: %d after %d", i, p.Value, prev)
		}
		prev = p.Value
	}
	if prev != 80 {
		t.Fatalf("clamped CDF should plateau at the running max 80, ends at %d", prev)
	}
}
