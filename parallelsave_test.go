package streamquantiles

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/faultio"
)

// Tests for the parallel checkpoint path: the fan-out marshal/unmarshal
// of the sharded containers must be byte-identical to the sequential
// codec at every worker count, survive the crash matrix mid-fan-out,
// and stall a writer for at most its own shard's marshal. This
// container runs GOMAXPROCS=1 by default, where fanout degrades to the
// inline sequential loop; the tests raise GOMAXPROCS so the spawned
// worker pool actually executes (and, under -race, is checked).

// withGOMAXPROCS raises GOMAXPROCS for the duration of a test so the
// fan-out's spawned-goroutine path runs even on single-core machines.
func withGOMAXPROCS(t testing.TB, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// parallelCodecCases covers both container kinds and, via the GK shrink,
// a topology carrying frozen rank components — every part kind the
// fan-out dispatches.
func buildParallelCash(t *testing.T, withComps bool) *ShardedCashRegister {
	t.Helper()
	fresh := func() CashRegister { return NewKLL(0.01, 7) }
	if withComps {
		fresh = func() CashRegister { return NewGKArray(0.01) }
	}
	s := mustShardedCash(t, 5, fresh)
	feedRange(s, 0, 4000)
	if withComps {
		// Shrinking a GK container freezes the retired shards as
		// query-time rank components, which travel in the same frame.
		if err := s.Reshard(2); err != nil {
			t.Fatal(err)
		}
		feedRange(s, 4000, 5000)
		if s.Components() == 0 {
			t.Fatal("shrink produced no frozen components; the test no longer covers the component arm of the fan-out")
		}
	}
	return s
}

func TestParallelMarshalByteIdentical(t *testing.T) {
	withGOMAXPROCS(t, 4)
	for _, tc := range []struct {
		name      string
		withComps bool
	}{{"kll-live-shards", false}, {"gkarray-frozen-components", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := buildParallelCash(t, tc.withComps)
			seq, err := s.MarshalBinaryWorkers(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{0, 2, 64} {
				par, err := s.MarshalBinaryWorkers(w)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(par, seq) {
					t.Fatalf("workers=%d marshal produced %d bytes differing from the sequential %d-byte encoding", w, len(par), len(seq))
				}
			}

			// Decode fan-out: a parallel decode of the sequential bytes
			// restores state that re-marshals identically and answers
			// queries exactly like a sequential decode.
			for _, w := range []int{0, 3} {
				dec := buildParallelCash(t, tc.withComps)
				if err := dec.UnmarshalBinaryWorkers(seq, w); err != nil {
					t.Fatal(err)
				}
				round, err := dec.MarshalBinaryWorkers(1)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(round, seq) {
					t.Fatalf("workers=%d decode round-trips to %d bytes differing from the %d-byte original", w, len(round), len(seq))
				}
				if err := dec.Invariants(); err != nil {
					t.Fatalf("workers=%d decode invariants: %v", w, err)
				}
				if a, b := dec.Count(), s.Count(); a != b {
					t.Fatalf("workers=%d decode count %d, want %d", w, a, b)
				}
			}
		})
	}
}

func TestParallelMarshalTurnstileByteIdentical(t *testing.T) {
	withGOMAXPROCS(t, 4)
	s := mustShardedTurn(t, 5, func() Turnstile { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) })
	feedRange(s, 0, 4000)
	seq, err := s.MarshalBinaryWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.MarshalBinaryWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(par, seq) {
		t.Fatalf("parallel turnstile marshal produced %d bytes differing from the sequential %d-byte encoding", len(par), len(seq))
	}
	dec := mustShardedTurn(t, 2, func() Turnstile { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) })
	if err := dec.UnmarshalBinaryWorkers(seq, 0); err != nil {
		t.Fatal(err)
	}
	round, err := dec.MarshalBinaryWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, seq) {
		t.Fatalf("parallel turnstile decode round-trips to %d bytes differing from the %d-byte original", len(round), len(seq))
	}
}

// TestCrashRecoveryDuringParallelSave runs the sharded rows of the
// crash matrix with the checkpoint payloads produced by the parallel
// fan-out under a raised GOMAXPROCS: every fault class must still leave
// one complete generation behind — never a torn hybrid — because the
// fan-out is byte-identical to the sequential codec and the durability
// protocol (temp → fsync → rename) is untouched by how the payload was
// produced.
func TestCrashRecoveryDuringParallelSave(t *testing.T) {
	withGOMAXPROCS(t, 4)
	const dir = "/ckpt"
	for _, ms := range shardedMatrixCases {
		for _, fc := range faultClasses {
			t.Run(ms.name+"/"+fc.name, func(t *testing.T) {
				s := ms.fresh(t)
				feedRange(s, 0, 3000)
				blob0, err := s.MarshalBinaryWorkers(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Reshard(ms.reshard); err != nil {
					t.Fatal(err)
				}
				feedRange(s, 3000, 5000)
				blob1, err := s.MarshalBinaryWorkers(0)
				if err != nil {
					t.Fatal(err)
				}
				// The fan-out must not change a single byte relative to
				// the sequential encoding the goldens pin.
				seq1, err := s.MarshalBinaryWorkers(1)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(seq1, blob1) {
					t.Fatalf("parallel marshal differs from sequential by %d vs %d bytes", len(blob1), len(seq1))
				}

				mem := faultio.NewMemFS()
				ck, err := checkpoint.Open(dir, checkpoint.WithFS(mem))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ck.Save(ms.name, blob0); err != nil {
					t.Fatal(err)
				}
				want, rfs := fc.run(t, mem, dir, ms.name, blob0, blob1)

				rec := ms.fresh(t)
				report, err := RecoverCheckpointFS(rfs, dir, rec)
				if err != nil {
					t.Fatalf("recovery: %v (report %v)", err, report)
				}
				got, err := rec.MarshalBinaryWorkers(1)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered state re-marshals to %d bytes differing from the %d-byte checkpoint payload: recovery produced a torn topology", len(got), len(want))
				}
				if err := rec.Invariants(); err != nil {
					t.Fatalf("recovered container invariants: %v", err)
				}
				// Per-candidate decode timing reaches the report when the
				// pipelined recovery runs validation.
				if len(report.Candidates) == 0 {
					t.Fatal("report carries no candidate timings")
				}
				loaded := 0
				for _, cand := range report.Candidates {
					if cand.Loaded {
						loaded++
						if cand.File != report.File || cand.Generation != report.Generation {
							t.Fatalf("loaded candidate %q gen %d does not match report %q gen %d",
								cand.File, cand.Generation, report.File, report.Generation)
						}
					}
				}
				if loaded != 1 {
					t.Fatalf("%d candidates marked loaded, want exactly 1 (report %+v)", loaded, report.Candidates)
				}
			})
		}
	}
}

// marshalGate lets exactly one shard's marshal block until released:
// the first MarshalBinary to arrive claims the gate, signals held, and
// parks; every other shard marshals straight through. The concurrency
// test uses it to hold one shard's lock mid-checkpoint while proving
// writers on the other shards keep ingesting.
type marshalGate struct {
	claimed atomic.Bool
	held    chan struct{} // closed once the claiming marshal is parked
	release chan struct{} // closed by the test to let it finish
}

// gatedCash wraps a summary so its marshal can be gated; everything
// else delegates to the embedded summary.
type gatedCash struct {
	CashRegister
	gate *marshalGate
}

func (g *gatedCash) MarshalBinary() ([]byte, error) {
	if g.gate.claimed.CompareAndSwap(false, true) {
		close(g.gate.held)
		<-g.gate.release
	}
	return g.CashRegister.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
}

func (g *gatedCash) Invariants() error {
	if ic, ok := g.CashRegister.(interface{ Invariants() error }); ok {
		return ic.Invariants()
	}
	return nil
}

// shardedMix mirrors internal/sharded's SplitMix64 affinity router so
// the test can aim batches at specific shards from outside the package.
func shardedMix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestWritersDuringParallelCheckpoint pins the stop-the-shard contract:
// while one shard's marshal is parked mid-checkpoint (holding that
// shard's lock), writers routed to every other shard complete — a
// writer stalls for at most one shard marshal, never the whole save.
// Run under -race this also exercises the fan-out pool against
// concurrent ingestion.
func TestWritersDuringParallelCheckpoint(t *testing.T) {
	withGOMAXPROCS(t, 4)
	const p = 4
	gate := &marshalGate{held: make(chan struct{}), release: make(chan struct{})}
	s := mustShardedCash(t, p, func() CashRegister {
		return &gatedCash{CashRegister: NewKLL(0.01, 7), gate: gate}
	})
	feedRange(s, 0, 1000)

	// Observe which shards' marshals complete; the one still open when
	// the gate is held is the parked shard.
	var ckptDone [p]atomic.Bool
	s.SetCheckpointObserver(func(shard int) func() {
		return func() { ckptDone[shard].Store(true) }
	})

	marshalErr := make(chan error, 1)
	go func() {
		_, err := s.MarshalBinaryWorkers(0)
		marshalErr <- err
	}()
	<-gate.held

	// Wait until every non-parked shard's marshal has finished, so the
	// only lock still held by the checkpoint is the parked shard's.
	deadline := time.Now().Add(10 * time.Second)
	parked := -1
	for parked < 0 {
		open, last := 0, -1
		for i := 0; i < p; i++ {
			if !ckptDone[i].Load() {
				open, last = open+1, i
			}
		}
		if open == 1 {
			parked = last
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d shard marshals still open while the gate is held", open)
		}
		runtime.Gosched()
	}

	// Affinity keys for every shard except the parked one.
	keys := map[int]uint64{}
	for k := uint64(0); len(keys) < p; k++ {
		keys[int(shardedMix(k)%p)] = k
	}
	writersDone := make(chan int, p)
	for shard, key := range keys {
		if shard == parked {
			continue
		}
		go func(shard int, key uint64) {
			s.UpdateBatchAffinity(key, []uint64{1, 2, 3})
			writersDone <- shard
		}(shard, key)
	}
	// All p−1 writers on non-parked shards must complete while the
	// checkpoint is still in flight (the gate is still closed).
	for i := 0; i < p-1; i++ {
		select {
		case <-writersDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("writer on a non-parked shard stalled behind the parked shard %d's marshal", parked)
		}
	}
	select {
	case err := <-marshalErr:
		t.Fatalf("checkpoint finished (err=%v) before the gate was released; the test never held a shard", err)
	default:
	}

	// A writer aimed at the parked shard stalls — that is the one
	// permitted stall window — and completes once the marshal does.
	parkedDone := make(chan struct{})
	go func() {
		s.UpdateBatchAffinity(keys[parked], []uint64{4, 5, 6})
		close(parkedDone)
	}()
	close(gate.release)
	if err := <-marshalErr; err != nil {
		t.Fatalf("parallel marshal: %v", err)
	}
	select {
	case <-parkedDone:
	case <-time.After(10 * time.Second):
		t.Fatal("writer on the parked shard never completed after the marshal finished")
	}
	s.SetCheckpointObserver(nil)
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkShardedMarshalAllocs pins the allocation-flat marshal path:
// per-shard encode buffers come from core.EncodeBufPool and the frame
// is assembled into one exactly-sized allocation, so steady-state
// allocations per save stay flat in stream size (satellite of the
// parallel-checkpoint change; run with -benchmem to see the count).
func BenchmarkShardedMarshalAllocs(b *testing.B) {
	s := mustShardedCash(b, 4, func() CashRegister { return NewKLL(0.01, 7) })
	feedRange(s, 0, 100_000)
	if _, err := s.MarshalBinary(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
