package streamquantiles

import (
	"bytes"
	"encoding"
	"sort"
	"testing"

	"streamquantiles/internal/core"
)

// Batch-equivalence properties: for every registered summary, feeding a
// stream through UpdateBatch/InsertBatch must be indistinguishable from
// item-at-a-time feeding — byte-identical encoded state for the
// summaries whose batch path replays the per-item algorithm exactly
// (buffer staging, block sampling, linear sketches), and identical or
// within-ε answers for the two GK variants whose batch path compresses
// across the whole batch at once.

// batchChunkSizes exercises ragged batch boundaries: single elements,
// primes, buffer-sized and page-sized runs.
var batchChunkSizes = []int{1, 3, 7, 64, 97, 1000, 4096}

// feedBatches drives data through u in cycling ragged chunks.
func feedBatches(u func([]uint64), data []uint64) {
	si := 0
	for i := 0; i < len(data); {
		sz := batchChunkSizes[si%len(batchChunkSizes)]
		si++
		if sz > len(data)-i {
			sz = len(data) - i
		}
		u(data[i : i+sz])
		i += sz
	}
}

// batchTestData is the deterministic 16-bit test stream shared by the
// equivalence tests (the universe fits qdigest and the dyadic sketches).
func batchTestData(n int) []uint64 {
	data := make([]uint64, n)
	for i := range data {
		data[i] = (uint64(i) * 2654435761) % (1 << 16)
	}
	return data
}

// cashCodec is a cash-register summary whose state can be compared
// byte-for-byte.
type cashCodec interface {
	CashRegister
	encoding.BinaryMarshaler
	Checkable
}

// turnCodec is the turnstile counterpart.
type turnCodec interface {
	Turnstile
	encoding.BinaryMarshaler
	Checkable
}

// TestUpdateBatchByteIdentical: summaries whose batch path is an exact
// replay of the per-item algorithm (same buffer fills, same compaction
// points, same RNG draw sequence) must marshal to identical bytes.
func TestUpdateBatchByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() cashCodec
	}{
		{"gkarray", func() cashCodec { return NewGKArray(0.01) }},
		{"qdigest", func() cashCodec { return NewQDigest(0.01, 16) }},
		{"mrl99", func() cashCodec { return NewMRL99(0.01, 7) }},
		{"random", func() cashCodec { return NewRandom(0.01, 7) }},
		{"kll", func() cashCodec { return NewKLL(0.01, 7) }},
	}
	data := batchTestData(30000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, got := tc.fresh(), tc.fresh()
			for _, x := range data {
				ref.Update(x)
			}
			feedBatches(got.(BatchCashRegister).UpdateBatch, data)
			if err := CheckInvariants(got); err != nil {
				t.Fatalf("invariants after UpdateBatch: %v", err)
			}
			refB, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := got.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refB, gotB) {
				t.Fatalf("batched state differs from per-item state (%d vs %d bytes)", len(gotB), len(refB))
			}
		})
	}
}

// TestInsertDeleteBatchByteIdentical: the dyadic sketches are linear,
// so batched insertion and deletion must land on exactly the per-item
// counters — including a delete phase that removes every third element.
func TestInsertDeleteBatchByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() turnCodec
	}{
		{"dcm", func() turnCodec { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) }},
		{"dcs", func() turnCodec { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }},
		{"drss", func() turnCodec { return NewDRSS(0.05, 16, DyadicConfig{Seed: 7}) }},
	}
	data := batchTestData(20000)
	var dels []uint64
	for i := 0; i < len(data); i += 3 {
		dels = append(dels, data[i])
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, got := tc.fresh(), tc.fresh()
			for _, x := range data {
				ref.Insert(x)
			}
			for _, x := range dels {
				ref.Delete(x)
			}
			gb := got.(BatchTurnstile)
			feedBatches(gb.InsertBatch, data)
			feedBatches(gb.DeleteBatch, dels)
			if err := CheckInvariants(got); err != nil {
				t.Fatalf("invariants after batch insert/delete: %v", err)
			}
			refB, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := got.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refB, gotB) {
				t.Fatal("batched turnstile state differs from per-item state")
			}
		})
	}
}

// TestGKBiasedBatchIdenticalAnswers: GKBiased's batch path stages into
// the same buffer the per-item path uses and flushes at the same
// points, so while it has no codec to compare, every query answer must
// match exactly.
func TestGKBiasedBatchIdenticalAnswers(t *testing.T) {
	data := batchTestData(30000)
	ref, got := NewGKBiased(0.01), NewGKBiased(0.01)
	for _, x := range data {
		ref.Update(x)
	}
	feedBatches(got.UpdateBatch, data)
	if err := CheckInvariants(got); err != nil {
		t.Fatalf("invariants after UpdateBatch: %v", err)
	}
	if ref.Count() != got.Count() {
		t.Fatalf("count %d vs %d", got.Count(), ref.Count())
	}
	for _, phi := range []float64{0.001, 0.01, 0.1, 0.5, 0.9, 0.999} {
		if r, g := ref.Quantile(phi), got.Quantile(phi); r != g {
			t.Errorf("Quantile(%v) = %d, per-item %d", phi, g, r)
		}
	}
	for probe := uint64(0); probe < 1<<16; probe += 997 {
		if r, g := ref.Rank(probe), got.Rank(probe); r != g {
			t.Errorf("Rank(%d) = %d, per-item %d", probe, g, r)
		}
	}
}

// rankWithinEps checks the ε-approximate quantile contract directly
// against the sorted stream: the answer's rank interval must intersect
// [target−tol, target+tol].
func rankWithinEps(t *testing.T, sorted []uint64, phi float64, ans uint64, tol int64) {
	t.Helper()
	n := int64(len(sorted))
	target := core.TargetRank(phi, n)
	below := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= ans }))
	atOrBelow := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > ans }))
	if below > target+tol || atOrBelow < target-tol {
		t.Errorf("Quantile(%v) = %d has rank interval [%d,%d], want within %d of %d",
			phi, ans, below, atOrBelow, tol, target)
	}
}

// TestGKCompressingBatchWithinEps: GKAdaptive and GKTheory legitimately
// compress across a batch (the merge pass is itself a COMPRESS), so the
// encoded state differs from per-item feeding — but the summary must
// keep its deep invariants and its εn rank guarantee against the raw
// stream.
func TestGKCompressingBatchWithinEps(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() cashCodec
	}{
		{"gkadaptive", func() cashCodec { return NewGKAdaptive(0.01) }},
		{"gktheory", func() cashCodec { return NewGKTheory(0.01) }},
	}
	data := batchTestData(30000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	eps := 0.01
	tol := int64(eps * float64(len(data)))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.fresh()
			feedBatches(got.(BatchCashRegister).UpdateBatch, data)
			if err := CheckInvariants(got); err != nil {
				t.Fatalf("invariants after UpdateBatch: %v", err)
			}
			if got.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d", got.Count(), len(data))
			}
			for _, phi := range EvenPhis(0.05) {
				rankWithinEps(t, sorted, phi, got.Quantile(phi), tol)
			}
		})
	}
}

// TestBatchDispatchFallback: core.UpdateBatch must fall back to a
// per-element loop for summaries without a native batch path; Windowed
// is the one registered summary that has none.
func TestBatchDispatchFallback(t *testing.T) {
	w := NewWindowed(0.05, 1000, 7)
	if _, ok := interface{}(w).(BatchCashRegister); ok {
		t.Skip("Windowed grew a native batch path; fallback no longer exercised here")
	}
	data := batchTestData(5000)
	feedBatches(func(xs []uint64) { UpdateBatch(w, xs) }, data)
	// Count covers at least W and at most W + blockSize − 1 elements.
	if n := w.Count(); n < 1000 || n >= 1000+w.BlockSize() {
		t.Fatalf("windowed count %d after fallback batches, want [1000, %d)", n, 1000+w.BlockSize())
	}
}
